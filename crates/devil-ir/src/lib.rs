//! Lowering of checked Devil specifications to access plans.
//!
//! The IR sits between the semantic model and the two back ends (the
//! `devil-runtime` interpreter and the `devil-codegen` stub emitters).
//! It precomputes everything an access needs:
//!
//! * per-register **write composition**: forced-bit masks and the bit
//!   segments each variable owns,
//! * per-variable **segment maps** (register bits ↔ variable bits,
//!   across concatenations),
//! * **access orders** honouring `serialized as` plans (with their
//!   conditional steps) and the default chunk/field orders,
//! * **cache layout**: one slot per register, including an indexed
//!   **slot range** per register family (base + stride arithmetic over
//!   the parameter domains, so family instances cache without hashing)
//!   and one cell per private memory variable,
//! * **precompiled plans**: a compile-time symbolic execution of the
//!   general interpreter flattens each access — including foldable
//!   pre/post/set actions, structure flushes and family indexing —
//!   into straight-line [`PlanStep`] lists,
//! * **guard-split variants**: conditional serialization orders
//!   (`if (sngl == CASCADED) icw3`) are compiled by enumerating the raw
//!   cache values of the tested variables and emitting one straight-line
//!   variant per combination; a [`PlanGuard`] list selects the variant
//!   from flat cache slots at run time,
//! * **plan arena**: every variant's steps live in one contiguous
//!   per-device `Vec<PlanStep>` ([`DeviceIr::plan_arena`]); a variant is
//!   a `(start, len)` range into it, so dispatch is an index and
//!   execution walks a single cache-friendly slice.

#![forbid(unsafe_code)]

use devil_sema::model::{
    Action, ActionTarget, ActionValue, Behavior, CheckedDevice, ChunkArg, CondSem, FamilyParam,
    Neutral, Offset, PortBinding, RegId, SerStep, StructId, TypeSem, VarId,
};
use std::sync::Arc;

/// Cap on the number of flat cache slots allocated to one register
/// family (the product of its parameter-domain sizes). Families with
/// larger domains keep the runtime's hashed fallback cache.
const FAMILY_SLOT_CAP: u128 = 4096;

/// Cap on the guard domain of one conditional serialization order: the
/// product of the tested variables' raw-value spaces (`2^width` each),
/// including dimensions inlined from nested conditional orders reached
/// through pre/post/set actions. Orders testing wider fields keep the
/// general path, mirroring the family slot cap above — recorded in
/// [`DeviceIr::plan_fallbacks`], never a silent bail.
const GUARD_DOMAIN_CAP: u128 = 4096;

/// One access that failed to plan-compile, with the reason. Collected
/// during lowering so fallbacks to the general interpreter are loud:
/// tests (and `devilc` users) can assert a spec's concrete surface
/// compiled completely, or see exactly which cap or shape it hit.
#[derive(Clone, Debug)]
pub struct PlanFallback {
    /// The access, e.g. `read payload`, `write w`, `write struct init`.
    pub access: String,
    /// Why compilation bailed.
    pub cause: String,
}

/// Step budget for one compiled plan: accesses whose expansion exceeds
/// this (deep automata, huge serializations) keep the general path.
const PLAN_STEP_BUDGET: usize = 96;

/// Action recursion budget, mirroring the runtime's `MAX_DEPTH`: a
/// specification the runtime would reject as cyclic compiles no plan.
const PLAN_MAX_DEPTH: u32 = 32;

/// The lowered device: everything indexed and precomputed.
#[derive(Clone, Debug)]
pub struct DeviceIr {
    /// Device name.
    pub name: String,
    /// Port descriptors, indexed by the model's `PortId`.
    pub ports: Vec<PortIr>,
    /// Registers, indexed by the model's `RegId`.
    pub regs: Vec<RegIr>,
    /// Variables, indexed by the model's `VarId`.
    pub vars: Vec<VarIr>,
    /// Structures, indexed by the model's `StructId`.
    pub structs: Vec<StructIr>,
    /// Number of memory cells (private unmapped variables).
    pub mem_cells: usize,
    /// Number of flat cache slots: one per non-family register plus one
    /// per family-register instance (domains up to the slot cap).
    pub cache_slots: usize,
    /// The plan arena: every compiled variant's steps, contiguous.
    /// Plans reference `(start, len)` ranges into it, so executing a
    /// variant walks one slice and dispatch never chases a pointer.
    /// Shared via `Arc` so cloning a `DeviceIr` never copies the steps.
    pub plan_arena: Arc<[PlanStep]>,
    /// Accesses that kept the general interpreter, with causes (loud
    /// fallbacks; see [`DeviceIr::plan_fallbacks`]).
    plan_fallbacks: Vec<PlanFallback>,
    /// Reverse slot map: the concrete register owning each flat cache
    /// slot (`None` for slots inside a family's indexed range). The
    /// emitters use this to name guard and assemble slots.
    slot_owners: Vec<Option<RegId>>,
    /// Reverse memory-cell map: the private variable owning each cell.
    mem_owners: Vec<VarId>,
    /// Interned name table: `(name, id)` sorted by name, for
    /// hash-free variable resolution.
    var_names: Vec<(String, VarId)>,
    /// Interned register names, sorted.
    reg_names: Vec<(String, RegId)>,
    /// Interned structure names, sorted.
    struct_names: Vec<(String, StructId)>,
    /// Fused driver-declared hot sequences (see [`DeviceIr::fuse`]).
    superplans: Vec<Superplan>,
}

/// A value available to a plan step at execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanValue {
    /// The value being written by the access (the stub's argument).
    Input,
    /// A constant folded at lowering time.
    Const(u64),
    /// The caller's family argument `args[i]`.
    Arg(usize),
}

impl PlanValue {
    /// Resolves the value against the call's arguments and input.
    #[inline]
    pub fn resolve(self, args: &[u64], input: u64) -> u64 {
        match self {
            PlanValue::Input => input,
            PlanValue::Const(c) => c,
            PlanValue::Arg(i) => args[i],
        }
    }
}

/// A plan step's port offset.
#[derive(Clone, Copy, Debug)]
pub enum PlanOffset {
    /// A constant offset.
    Const(u64),
    /// The caller's family argument `args[i]`.
    Arg(usize),
}

impl PlanOffset {
    /// Resolves the offset against the call's arguments.
    #[inline]
    pub fn resolve(self, args: &[u64]) -> u64 {
        match self {
            PlanOffset::Const(c) => c,
            PlanOffset::Arg(i) => args[i],
        }
    }
}

/// One family-parameter dimension of a register's slot range.
#[derive(Clone, Debug)]
pub struct FamilyDim {
    /// Slots advanced per domain-index increment.
    pub stride: usize,
    /// The parameter domain as `(lo, hi, index_base)` inclusive ranges.
    pub ranges: Vec<(u64, u64, usize)>,
    /// Total number of domain values.
    pub count: usize,
}

impl FamilyDim {
    /// The dense domain index of `v`, or `None` outside the domain.
    #[inline]
    pub fn index_of(&self, v: u64) -> Option<usize> {
        self.ranges
            .iter()
            .find(|&&(lo, hi, _)| (lo..=hi).contains(&v))
            .map(|&(lo, _, base)| base + (v - lo) as usize)
    }
}

/// The flat cache-slot range of a register family: instance slots are
/// `base + Σ index(argᵢ)·strideᵢ` — pure arithmetic, no hashing.
#[derive(Clone, Debug)]
pub struct FamilySlots {
    /// First slot of the range.
    pub base: usize,
    /// Number of slots (the product of the domain sizes).
    pub count: usize,
    /// One dimension per family parameter.
    pub dims: Vec<FamilyDim>,
}

impl FamilySlots {
    /// The flat slot of one instance; `None` when an argument falls
    /// outside the declared domain.
    pub fn slot_of(&self, args: &[u64]) -> Option<usize> {
        if args.len() != self.dims.len() {
            return None;
        }
        let mut slot = self.base;
        for (dim, &a) in self.dims.iter().zip(args) {
            slot += dim.index_of(a)? * dim.stride;
        }
        Some(slot)
    }
}

/// A plan step's cache slot, resolved from family arguments.
#[derive(Clone, Debug)]
pub enum PlanSlot {
    /// A concrete register's slot.
    Fixed(usize),
    /// A family instance: `base` plus one domain-index times stride per
    /// argument dimension (constant arguments are folded into `base`).
    Indexed {
        /// Folded base slot.
        base: usize,
        /// `(argument index, dimension)` pairs.
        dims: Vec<(usize, FamilyDim)>,
    },
}

impl PlanSlot {
    /// Resolves the slot. Plan compilation proved every reachable
    /// argument indexable, so resolution cannot fail on validated args.
    #[inline]
    pub fn resolve(&self, args: &[u64]) -> usize {
        match self {
            PlanSlot::Fixed(s) => *s,
            PlanSlot::Indexed { base, dims } => {
                let mut slot = *base;
                for (arg, dim) in dims {
                    slot += dim.index_of(args[*arg]).expect("family argument validated by caller")
                        * dim.stride;
                }
                slot
            }
        }
    }
}

/// The inclusive-exclusive slot range a [`PlanSlot`] may resolve to.
fn slot_span(s: &PlanSlot) -> (usize, usize) {
    match s {
        PlanSlot::Fixed(i) => (*i, i + 1),
        PlanSlot::Indexed { base, dims } => {
            let span: usize = dims.iter().map(|(_, d)| d.count.saturating_sub(1) * d.stride).sum();
            (*base, base + span + 1)
        }
    }
}

/// Conservative may-alias test between two plan slots.
fn slots_may_alias(a: &PlanSlot, b: &PlanSlot) -> bool {
    let (al, ah) = slot_span(a);
    let (bl, bh) = slot_span(b);
    al < bh && bl < ah
}

/// One value-bearing segment of a write step (constant values are
/// folded into [`WriteCompose::const_or`] instead).
#[derive(Clone, Debug)]
pub struct WriteSeg {
    /// Register-bit placement.
    pub seg: FieldSeg,
    /// The inserted value (`Input` or `Arg`).
    pub value: PlanValue,
}

/// Write composition of one plan step: the raw value sent to the
/// device is `((cached & keep_and) | const_or | segs…) & out_and |
/// out_or`, exactly the general interpreter's store/compose/mask
/// pipeline folded into constants.
#[derive(Clone, Debug)]
pub struct WriteCompose {
    /// Cached bits to keep (clears written segments and trigger
    /// neighbours' bits).
    pub keep_and: u64,
    /// Folded constants: trigger-neutral substitutions plus
    /// constant-valued segment inserts.
    pub const_or: u64,
    /// Runtime-valued segment inserts.
    pub segs: Vec<WriteSeg>,
    /// Register AND-mask applied to the outgoing write.
    pub out_and: u64,
    /// Register OR-mask applied to the outgoing write.
    pub out_or: u64,
}

/// A register access of a compiled plan.
#[derive(Clone, Debug)]
pub struct AccessStep {
    /// The accessed register.
    pub reg: RegId,
    /// Cache slot of the accessed instance.
    pub slot: PlanSlot,
    /// Port index.
    pub port: u32,
    /// Port offset.
    pub offset: PlanOffset,
    /// Access width in bits.
    pub size: u32,
}

/// Cache-only masked store: updates a register's cached raw value
/// without a device access. Emitted for a written variable (or an
/// action-assigned structure field) whose bits land on a register the
/// flattened serialization order does not flush — the general path
/// still stores those bits up front (`store_var_bits`), and later
/// composes must see them.
#[derive(Clone, Debug)]
pub struct StoreCompose {
    /// Cached bits to keep (clears the stored segments).
    pub keep_and: u64,
    /// Folded constant bits of the stored segments.
    pub const_or: u64,
    /// Runtime-valued segment inserts.
    pub segs: Vec<WriteSeg>,
}

/// One straight-line step of a compiled plan.
#[derive(Clone, Debug)]
pub enum PlanStep {
    /// Device read into the register's cache slot.
    Read(AccessStep),
    /// Composed, masked device write updating the cache slot.
    Write(AccessStep, WriteCompose),
    /// Cache-only store into a register's slot (no device access).
    Store(PlanSlot, StoreCompose),
    /// Private-memory update (a folded mem-variable action).
    SetCell {
        /// Target memory cell.
        cell: usize,
        /// Stored value.
        value: PlanValue,
    },
    /// Vectored block read: one `Bus::ins`-style transaction filling
    /// the caller's block-in buffer. Only emitted by superplan fusion
    /// ([`DeviceIr::fuse`]); the transfer bypasses the cache, exactly
    /// like the runtime's unfused block path.
    BlockIn {
        /// Port index.
        port: u32,
        /// Constant port offset.
        offset: u64,
        /// Word width in bits.
        size: u32,
    },
    /// Vectored block write from the caller's block-out buffer.
    BlockOut {
        /// Port index.
        port: u32,
        /// Constant port offset.
        offset: u64,
        /// Word width in bits.
        size: u32,
    },
    /// Assembles a fused read op's value from fixed cache slots into
    /// the superplan's output vector, in place — emitted immediately
    /// after the op's own steps, so a later fused op overwriting a
    /// shared slot (the IDE status register) cannot corrupt it.
    Assemble {
        /// Output vector index.
        out: u32,
        /// `(slot, segment)` assembly pairs.
        segs: Vec<(usize, FieldSeg)>,
    },
}

impl PlanStep {
    fn slot(&self) -> Option<&PlanSlot> {
        match self {
            PlanStep::Read(a) | PlanStep::Write(a, _) => Some(&a.slot),
            PlanStep::Store(slot, _) => Some(slot),
            PlanStep::SetCell { .. }
            | PlanStep::BlockIn { .. }
            | PlanStep::BlockOut { .. }
            | PlanStep::Assemble { .. } => None,
        }
    }
}

/// Where a [`PlanGuard`] (and the matching [`SelectorDim`] bits) reads
/// the tested value from at dispatch time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardSource {
    /// A flat cache slot: the cached raw bits, masked. Never-cached
    /// slots compare as 0 — exactly the general interpreter's
    /// `assemble_cached` default for unread registers.
    Slot(usize),
    /// A private memory cell, compared whole (the general path reads
    /// the cell raw, with no width masking).
    Cell(usize),
    /// The value being written by the access itself. Used when a write
    /// order's condition tests the variable being written: the general
    /// path stores the new bits before evaluating, so the guard must
    /// see the caller's input, not the (pre-store) cache.
    Input,
}

/// One run-time guard of a plan variant: the variant applies when the
/// bits read from `source`, masked by `mask`, equal `expected`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanGuard {
    /// Where the tested bits come from.
    pub source: GuardSource,
    /// Tested bits (register bits for slots, value bits for cells and
    /// input).
    pub mask: u64,
    /// Expected masked value.
    pub expected: u64,
}

impl PlanGuard {
    /// Whether the guard holds for the given cache/memory/input state.
    #[inline]
    pub fn holds(&self, slots: &[u64], slot_valid: &[bool], mem: &[u64], input: u64) -> bool {
        let raw = match self.source {
            GuardSource::Slot(s) => {
                if slot_valid[s] {
                    slots[s]
                } else {
                    0
                }
            }
            GuardSource::Cell(c) => mem[c],
            GuardSource::Input => input,
        };
        raw & self.mask == self.expected
    }
}

/// One straight-line version of a (possibly guard-split) plan: a
/// conjunction of slot guards plus a step range in the device's
/// [plan arena](DeviceIr::plan_arena).
#[derive(Clone, Debug)]
pub struct PlanVariant {
    /// Guards selecting this variant; all must hold. Empty for the
    /// single variant of an unconditional access. Selection does not
    /// scan these — [`AccessPlan::select_variant`] indexes by the
    /// assembled tested values — but they document each variant's
    /// domain and back the debug cross-check.
    pub guards: Vec<PlanGuard>,
    /// First step in the arena.
    pub start: u32,
    /// Number of steps.
    pub len: u32,
}

/// One tested variable of a guard-split plan's variant selector: where
/// its value assembles from at dispatch time, and the size of its
/// raw-value space.
#[derive(Clone, Debug)]
pub struct SelectorDim {
    /// `(slot, segment)` pairs assembling the tested value from flat
    /// cache slots (uncached slots contribute 0, as in the general
    /// interpreter). Empty for memory-cell tested variables.
    pub segs: Vec<(usize, FieldSeg)>,
    /// Value bits sourced from the access's own input instead of the
    /// cache (a write order testing the variable being written): each
    /// segment maps input bits (`reg_lo..=reg_hi`) to tested-value bits
    /// (`var_lo`). The general path stores the written bits before
    /// evaluating conditions, so these bits must come from the caller's
    /// value, not the pre-store cache.
    pub input_segs: Vec<FieldSeg>,
    /// Tested-value bits covered by `input_segs` (cleared out of the
    /// cache-assembled value before the input bits are OR-ed in).
    pub input_mask: u64,
    /// Memory cell holding the tested value (`segs` empty). The cell is
    /// compared raw: a value outside the enumerated `radix` (the
    /// general path stores cells unmasked) aborts selection, and the
    /// access falls back to the general interpreter.
    pub cell: Option<usize>,
    /// `2^width` — the mixed-radix base of this dimension.
    pub radix: usize,
}

/// A precompiled access plan for one variable or structure direction.
///
/// Compiled whenever the whole access — including pre/post/set actions
/// and structure flushes it triggers — is statically a straight line of
/// register accesses and memory-cell updates for **every** combination
/// of the values its serialization conditionals test. Unconditional
/// accesses compile a single unguarded variant; conditional orders
/// guard-split into one variant per tested-value combination —
/// including orders testing the variable being written (input-sourced
/// guards), memory-cell tested variables (cell-sourced guards), and
/// nested conditional orders reached through pre/post/set actions
/// (their guard domains inline into the outer enumeration when the
/// tested value is statically known or still entry-state at the
/// evaluation point). Action values read from other variables, hashed
/// family caches, mid-access-modified tested variables, guard domains
/// past [`GUARD_DOMAIN_CAP`] and over-budget expansions fall back to
/// the general interpreter — each recorded in
/// [`DeviceIr::plan_fallbacks`] so nothing bails silently.
#[derive(Clone, Debug, Default)]
pub struct AccessPlan {
    /// Straight-line variants. The guard enumeration is exhaustive over
    /// the tested variables' raw-value spaces, so exactly one variant
    /// matches any cache state, and variants are laid out in
    /// mixed-radix order of the tested values (first tested variable
    /// most significant) so selection is an indexed lookup.
    pub variants: Vec<PlanVariant>,
    /// The tested variables' value sources, one dimension per tested
    /// variable in enumeration order. Empty for unconditional plans.
    pub selector: Vec<SelectorDim>,
    /// `(slot, segment)` pairs assembling the read value from the cache
    /// (empty for write plans; shared by all variants).
    pub assemble: Vec<(PlanSlot, FieldSeg)>,
    /// For a memory-cell variable's read plan: the cell served directly
    /// (`assemble` empty, no steps).
    pub cell: Option<usize>,
    /// The deepest action-recursion level the general interpreter would
    /// reach executing this access from depth 0 (the maximum over all
    /// variants). The runtime only takes a plan when the current depth
    /// plus this bound stays within its recursion limit, so a plan can
    /// never succeed where the general path would report
    /// `RecursionLimit`.
    pub max_depth: u32,
}

impl AccessPlan {
    /// Selects the variant matching the given cache/memory/input
    /// state: the tested variables assemble from their sources and
    /// index the mixed-radix variant table directly — O(tested
    /// segments), never a scan over the variants, so a wide guard
    /// domain costs no more to dispatch than a narrow one.
    /// Unconditional plans return their single variant without touching
    /// the cache. `None` means no variant describes the state — only
    /// reachable through a memory cell holding a value outside its
    /// variable's raw space (cells store unmasked) — and callers fall
    /// back to the general interpreter, which evaluates the conditions
    /// directly.
    #[inline]
    pub fn select_variant(
        &self,
        slots: &[u64],
        slot_valid: &[bool],
        mem: &[u64],
        input: u64,
    ) -> Option<&PlanVariant> {
        self.select_variant_indexed(slots, slot_valid, mem, input).map(|(_, v)| v)
    }

    /// [`AccessPlan::select_variant`] with the computed mixed-radix
    /// variant index exposed. The index is what coverage-guided
    /// harnesses key on: `(access, index)` names one straight-line
    /// variant of the compiled plan surface.
    #[inline]
    pub fn select_variant_indexed(
        &self,
        slots: &[u64],
        slot_valid: &[bool],
        mem: &[u64],
        input: u64,
    ) -> Option<(usize, &PlanVariant)> {
        if self.selector.is_empty() {
            return self.variants.first().map(|v| (0, v));
        }
        let mut idx = 0usize;
        for dim in &self.selector {
            let mut v = if let Some(cell) = dim.cell {
                mem[cell]
            } else {
                let mut v = 0u64;
                for &(slot, seg) in &dim.segs {
                    let raw = if slot_valid[slot] { slots[slot] } else { 0 };
                    v |= seg.extract(raw);
                }
                v
            };
            if dim.input_mask != 0 {
                v &= !dim.input_mask;
                for seg in &dim.input_segs {
                    v |= seg.extract(input);
                }
            }
            if v >= dim.radix as u64 {
                return None;
            }
            idx = idx * dim.radix + v as usize;
        }
        let variant = self.variants.get(idx)?;
        debug_assert!(
            variant.guards.iter().all(|g| g.holds(slots, slot_valid, mem, input)),
            "selector index and guard list disagree"
        );
        Some((idx, variant))
    }
}

/// A port descriptor.
#[derive(Clone, Debug)]
pub struct PortIr {
    /// Port name (parameter name in the spec).
    pub name: String,
    /// Access width in bits.
    pub width: u32,
}

/// One bit segment tying a register to a variable.
///
/// Register bits `reg_lo..=reg_hi` correspond to variable bits starting
/// at `var_lo` (inclusive, same length, same order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldSeg {
    /// The owning variable.
    pub var: VarId,
    /// Most significant register bit of the segment.
    pub reg_hi: u32,
    /// Least significant register bit of the segment.
    pub reg_lo: u32,
    /// Variable bit corresponding to `reg_lo`.
    pub var_lo: u32,
}

impl FieldSeg {
    /// Number of bits in the segment.
    pub fn width(&self) -> u32 {
        self.reg_hi - self.reg_lo + 1
    }

    /// Extracts this segment from a raw register value, positioned at
    /// the variable's bit offsets.
    pub fn extract(&self, reg_raw: u64) -> u64 {
        let w = self.width();
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        ((reg_raw >> self.reg_lo) & mask) << self.var_lo
    }

    /// Positions variable bits into register bit positions.
    pub fn insert(&self, var_val: u64) -> u64 {
        let w = self.width();
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        ((var_val >> self.var_lo) & mask) << self.reg_lo
    }

    /// The register-bit mask covered by this segment.
    pub fn reg_mask(&self) -> u64 {
        let w = self.width();
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        mask << self.reg_lo
    }
}

/// A lowered register.
#[derive(Clone, Debug)]
pub struct RegIr {
    /// Register name.
    pub name: String,
    /// Size in bits (== the bound port's access width).
    pub size: u32,
    /// Read binding (port index + offset), if readable.
    pub read: Option<PortBinding>,
    /// Write binding, if writable.
    pub write: Option<PortBinding>,
    /// OR-mask applied on writes (forced-1 bits).
    pub or_mask: u64,
    /// AND-mask applied on writes (clears forced-0 bits).
    pub and_mask: u64,
    /// Family parameters (empty for concrete registers).
    pub params: Vec<FamilyParam>,
    /// Pre-access actions. `Arc`-shared: the general interpreter takes
    /// a handle per register access, which must not allocate.
    pub pre: Arc<[Action]>,
    /// Post-access actions.
    pub post: Arc<[Action]>,
    /// Private-state updates on access.
    pub set: Arc<[Action]>,
    /// Every variable segment laid over this register.
    pub fields: Vec<FieldSeg>,
    /// Whether any variable on this register is volatile (the register's
    /// cached value may go stale on its own).
    pub volatile: bool,
    /// Flat cache slot for non-family registers; `None` for families.
    pub slot: Option<usize>,
    /// Indexed slot range for family registers whose domain fits the
    /// slot cap; `None` for concrete registers and oversized families
    /// (which the runtime caches in a hashed fallback).
    pub family_slots: Option<FamilySlots>,
}

/// A lowered variable.
#[derive(Clone, Debug)]
pub struct VarIr {
    /// Variable name.
    pub name: String,
    /// Hidden from the functional interface.
    pub private: bool,
    /// Bit width.
    pub width: u32,
    /// The variable's type.
    pub ty: TypeSem,
    /// Behaviour flags.
    pub behavior: Behavior,
    /// Trigger neutral value.
    pub neutral: Option<Neutral>,
    /// Family parameters (variable arrays).
    pub params: Vec<FamilyParam>,
    /// Register segments backing the variable, with the family arguments
    /// used for each segment's register.
    pub segs: Vec<VarSeg>,
    /// Register access order for reads. `Arc`-shared: the general
    /// interpreter takes a handle per access, which must not allocate
    /// or deep-copy the variable.
    pub read_order: Arc<[SerStep]>,
    /// Register access order for writes.
    pub write_order: Arc<[SerStep]>,
    /// Private-state updates when the variable is written.
    pub set: Arc<[Action]>,
    /// Cell index for unmapped private memory variables.
    pub mem_cell: Option<usize>,
    /// Parent structure for fields.
    pub parent: Option<StructId>,
    /// Whether the variable is readable.
    pub readable: bool,
    /// Whether the variable is writable.
    pub writable: bool,
    /// Precompiled read plan, when the access qualifies. Shared via
    /// `Arc` so cloning a `VarIr` (the interpreter's general path does)
    /// never deep-copies a plan.
    pub read_plan: Option<Arc<AccessPlan>>,
    /// Precompiled write plan, when the access qualifies.
    pub write_plan: Option<Arc<AccessPlan>>,
    /// `(slot, segment)` pairs assembling the variable from fixed cache
    /// slots — the hash-free cached-getter path for structure fields.
    pub slot_assemble: Option<Vec<(usize, FieldSeg)>>,
}

impl RegIr {
    /// Whether the register can be read.
    pub fn readable(&self) -> bool {
        self.read.is_some()
    }

    /// Whether the register can be written.
    pub fn writable(&self) -> bool {
        self.write.is_some()
    }
}

/// One register segment of a variable, with family arguments.
#[derive(Clone, Debug)]
pub struct VarSeg {
    /// The backing register.
    pub reg: RegId,
    /// Family arguments used to address the register.
    pub args: Vec<ChunkArg>,
    /// The bit correspondence.
    pub seg: FieldSeg,
}

/// A lowered structure.
#[derive(Clone, Debug)]
pub struct StructIr {
    /// Structure name.
    pub name: String,
    /// Member variables. `Arc`-shared, like the orders below: the
    /// general interpreter takes handles per access, never a clone.
    pub fields: Arc<[VarId]>,
    /// Register access order for a structure read.
    pub read_order: Arc<[SerStep]>,
    /// Register access order for a structure write.
    pub write_order: Arc<[SerStep]>,
    /// Precompiled straight-line structure read (the Figure 3 hot
    /// loop), when every step — index-register pre-writes included —
    /// is statically decidable.
    pub read_plan: Option<Arc<AccessPlan>>,
    /// Precompiled structure write (cache-composed flush).
    pub write_plan: Option<Arc<AccessPlan>>,
}

/// Lowers a checked device to IR.
pub fn lower(model: &CheckedDevice) -> DeviceIr {
    let ports =
        model.ports.iter().map(|p| PortIr { name: p.name.clone(), width: p.width }).collect();

    // Registers: masks, flat cache slots and (initially empty) field
    // lists. Non-family registers get one slot each; families with
    // enumerable domains get a contiguous indexed range.
    let mut cache_slots = 0usize;
    let mut regs: Vec<RegIr> = model
        .registers
        .iter()
        .map(|r| {
            let (or_mask, and_mask) = r.forced_masks();
            let (slot, family_slots) = if r.params.is_empty() {
                let s = cache_slots;
                cache_slots += 1;
                (Some(s), None)
            } else {
                (None, family_slot_range(&r.params, &mut cache_slots))
            };
            RegIr {
                name: r.name.clone(),
                size: r.size,
                read: r.read.clone(),
                write: r.write.clone(),
                or_mask,
                and_mask,
                params: r.params.clone(),
                pre: r.pre.clone().into(),
                post: r.post.clone().into(),
                set: r.set.clone().into(),
                fields: Vec::new(),
                volatile: false,
                slot,
                family_slots,
            }
        })
        .collect();

    // Variables: segment maps; fill register field lists as we go.
    let mut mem_cells = 0usize;
    let mut vars: Vec<VarIr> = Vec::with_capacity(model.variables.len());
    for (vi, v) in model.variables.iter().enumerate() {
        let vid = VarId(vi as u32);
        let width = v.width();
        let mut segs: Vec<VarSeg> = Vec::new();
        if let Some(chunks) = &v.bits {
            // Walk chunks MSB-first; var bit positions count down.
            let mut next_hi = width as i64 - 1;
            for chunk in chunks {
                for &(hi, lo) in &chunk.ranges {
                    let w = (hi - lo + 1) as i64;
                    let var_lo = (next_hi - w + 1) as u32;
                    let seg = FieldSeg { var: vid, reg_hi: hi, reg_lo: lo, var_lo };
                    regs[chunk.reg.0 as usize].fields.push(seg);
                    if v.behavior.volatile {
                        regs[chunk.reg.0 as usize].volatile = true;
                    }
                    segs.push(VarSeg { reg: chunk.reg, args: chunk.args.clone(), seg });
                    next_hi -= w;
                }
            }
            debug_assert_eq!(next_hi, -1, "segment walk must cover the variable exactly");
        }
        let mem_cell = if v.bits.is_none() {
            let c = mem_cells;
            mem_cells += 1;
            Some(c)
        } else {
            None
        };
        // Access orders: explicit plan or default (distinct registers in
        // chunk order — MSB first for reads *and* writes; the paper's
        // 8237 example overrides reads with `serialized as`).
        let default_order: Vec<SerStep> = {
            let mut seen: Vec<RegId> = Vec::new();
            for s in &segs {
                if !seen.contains(&s.reg) {
                    seen.push(s.reg);
                }
            }
            seen.into_iter().map(SerStep::Reg).collect()
        };
        let (read_order, write_order): (Arc<[SerStep]>, Arc<[SerStep]>) = match &v.serialized {
            Some(plan) => (plan.steps.clone().into(), plan.steps.clone().into()),
            None => (default_order.clone().into(), default_order.into()),
        };
        let readable =
            v.bits.as_ref().is_none_or(|cs| cs.iter().all(|c| model.reg(c.reg).readable()));
        let writable =
            v.bits.as_ref().is_none_or(|cs| cs.iter().all(|c| model.reg(c.reg).writable()));
        // Memory cells have no register bits to assemble: they must
        // keep `None` so cached getters read the cell, not an empty
        // (always-0) segment list.
        let slot_assemble = if mem_cell.is_some() {
            None
        } else {
            segs.iter().map(|s| regs[s.reg.0 as usize].slot.map(|sl| (sl, s.seg))).collect()
        };
        vars.push(VarIr {
            name: v.name.clone(),
            private: v.private,
            width,
            ty: v.ty.clone(),
            behavior: v.behavior,
            neutral: v.neutral,
            params: v.params.clone(),
            segs,
            read_order,
            write_order,
            set: v.set.clone().into(),
            mem_cell,
            parent: v.parent,
            readable,
            writable,
            read_plan: None,
            write_plan: None,
            slot_assemble,
        });
    }

    // Structures: default order = registers of fields in field order.
    let mut structs: Vec<StructIr> = model
        .structures
        .iter()
        .map(|s| {
            let default_order: Vec<SerStep> = {
                let mut seen: Vec<RegId> = Vec::new();
                for &fid in &s.fields {
                    for seg in &vars[fid.0 as usize].segs {
                        if !seen.contains(&seg.reg) {
                            seen.push(seg.reg);
                        }
                    }
                }
                seen.into_iter().map(SerStep::Reg).collect()
            };
            let (read_order, write_order): (Arc<[SerStep]>, Arc<[SerStep]>) = match &s.serialized {
                Some(plan) => (plan.steps.clone().into(), plan.steps.clone().into()),
                None => (default_order.clone().into(), default_order.into()),
            };
            StructIr {
                name: s.name.clone(),
                fields: s.fields.clone().into(),
                read_order,
                write_order,
                read_plan: None,
                write_plan: None,
            }
        })
        .collect();

    // Final pass: symbolically execute every access now that registers,
    // variables and structures (and thus trigger layouts and flush
    // orders) are fully known. All compiled variants append their steps
    // to one shared arena.
    let mut arena: Vec<PlanStep> = Vec::new();
    let mut plan_fallbacks: Vec<PlanFallback> = Vec::new();
    let env = CompileEnv { vars: &vars, regs: &regs, structs: &structs, cache_slots, mem_cells };
    let mut var_plans = Vec::with_capacity(vars.len());
    for vi in 0..vars.len() {
        var_plans.push(compile_var_plans(VarId(vi as u32), &env, &mut arena, &mut plan_fallbacks));
    }
    let mut struct_plans = Vec::with_capacity(structs.len());
    for si in 0..structs.len() {
        struct_plans.push(compile_struct_plans(
            StructId(si as u32),
            &env,
            &mut arena,
            &mut plan_fallbacks,
        ));
    }
    for (vi, (read_plan, write_plan)) in var_plans.into_iter().enumerate() {
        vars[vi].read_plan = read_plan;
        vars[vi].write_plan = write_plan;
    }
    for (si, (read_plan, write_plan)) in struct_plans.into_iter().enumerate() {
        structs[si].read_plan = read_plan;
        structs[si].write_plan = write_plan;
    }

    let mut var_names: Vec<(String, VarId)> =
        vars.iter().enumerate().map(|(i, v)| (v.name.clone(), VarId(i as u32))).collect();
    var_names.sort_by(|a, b| a.0.cmp(&b.0));
    let mut reg_names: Vec<(String, RegId)> =
        regs.iter().enumerate().map(|(i, r)| (r.name.clone(), RegId(i as u32))).collect();
    reg_names.sort_by(|a, b| a.0.cmp(&b.0));
    let mut slot_owners: Vec<Option<RegId>> = vec![None; cache_slots];
    for (ri, r) in regs.iter().enumerate() {
        if let Some(s) = r.slot {
            slot_owners[s] = Some(RegId(ri as u32));
        }
    }
    let mut mem_owners: Vec<VarId> = vec![VarId(0); mem_cells];
    for (vi, v) in vars.iter().enumerate() {
        if let Some(c) = v.mem_cell {
            mem_owners[c] = VarId(vi as u32);
        }
    }

    let mut struct_names: Vec<(String, StructId)> = structs
        .iter()
        .enumerate()
        .map(|(i, s): (usize, &StructIr)| (s.name.clone(), StructId(i as u32)))
        .collect();
    struct_names.sort_by(|a, b| a.0.cmp(&b.0));

    // Fallbacks sort by (access, cause): compilation visits accesses in
    // declaration order, but consumers (manifests, diagnostics) need an
    // order that is stable under refactors of the compile passes.
    plan_fallbacks.sort_by(|a, b| (&a.access, &a.cause).cmp(&(&b.access, &b.cause)));

    DeviceIr {
        name: model.name.clone(),
        ports,
        regs,
        vars,
        structs,
        mem_cells,
        cache_slots,
        plan_arena: arena.into(),
        plan_fallbacks,
        slot_owners,
        mem_owners,
        var_names,
        reg_names,
        struct_names,
        superplans: Vec::new(),
    }
}

/// Allocates the indexed slot range of one register family, or `None`
/// when the domain product exceeds [`FAMILY_SLOT_CAP`].
fn family_slot_range(params: &[FamilyParam], cache_slots: &mut usize) -> Option<FamilySlots> {
    let counts: Vec<u128> = params
        .iter()
        .map(|p| p.values.iter().map(|&(lo, hi)| (hi - lo) as u128 + 1).sum())
        .collect();
    let total: u128 = counts.iter().product();
    if total == 0 || total > FAMILY_SLOT_CAP {
        return None;
    }
    // Row-major: the last parameter varies fastest.
    let mut dims: Vec<FamilyDim> = Vec::with_capacity(params.len());
    let mut stride = total as usize;
    for (p, &count) in params.iter().zip(&counts) {
        stride /= count as usize;
        let mut ranges = Vec::with_capacity(p.values.len());
        let mut base = 0usize;
        for &(lo, hi) in &p.values {
            ranges.push((lo, hi, base));
            base += (hi - lo) as usize + 1;
        }
        dims.push(FamilyDim { stride, ranges, count: count as usize });
    }
    let base = *cache_slots;
    *cache_slots += total as usize;
    Some(FamilySlots { base, count: total as usize, dims })
}

/// The immutable inputs of plan compilation for one device.
struct CompileEnv<'a> {
    vars: &'a [VarIr],
    regs: &'a [RegIr],
    structs: &'a [StructIr],
    cache_slots: usize,
    mem_cells: usize,
}

/// Symbolic knowledge about one flat cache slot during compilation,
/// tracking the *general interpreter's* cache at the current point of
/// the simulated access (the general path stores written bits before
/// its steps run, so this can differ from the plan's runtime cache).
#[derive(Clone, Copy)]
struct SlotSym {
    /// Bits whose value is statically known: pinned by the variant's
    /// guard assignment, or written with folded constants.
    known_mask: u64,
    /// The known bits' values, in register-bit positions.
    known_val: u64,
    /// Bits still holding their plan-entry value — what entry-state
    /// guards can describe.
    entry_mask: u64,
    /// Bits last stored with the access's own input value (the
    /// top-level written variable's store) — what input-sourced guards
    /// can describe.
    input_mask: u64,
}

/// Symbolic knowledge about one private memory cell.
#[derive(Clone, Copy)]
struct CellSym {
    /// Statically-known cell value, if any.
    known: Option<u64>,
    /// Whether the cell still holds its plan-entry value.
    entry: bool,
}

/// How a nested conditional's tested variable evaluates at the current
/// point of the symbolic execution.
enum TestedValue {
    /// Statically known — the condition folds.
    Known(u64),
    /// Still entry-state — becomes a selector dimension of the outer
    /// enumeration.
    Entry,
    /// Modified mid-access in a way no entry guard can describe.
    Opaque,
}

/// Compile-time symbolic execution of the general interpreter.
///
/// Walks the exact recursion `devil-runtime` performs for an access and
/// records the device operations as straight-line steps. Anything not
/// statically decidable — conditional serialization, action values read
/// from other variables, hashed family caches, out-of-domain arguments,
/// over-budget expansion — aborts compilation (`None`), and the access
/// keeps the general path.
struct PlanBuilder<'a> {
    env: &'a CompileEnv<'a>,
    /// The compiled access's family parameters: the domains behind
    /// [`PlanValue::Arg`] references.
    params: &'a [FamilyParam],
    /// The variant's static assignment of tested-variable raw values
    /// (the outer guard enumeration), seeding the symbolic shadow
    /// state below.
    assign: Vec<(VarId, u64)>,
    steps: Vec<PlanStep>,
    /// Deepest recursion level visited, with the exact accounting of
    /// the general interpreter (see [`AccessPlan::max_depth`]).
    max_depth: u32,
    /// Slots that must not be touched until their own write step is
    /// emitted: the general path composes a register write from the
    /// cache *before* running its pre-actions and stores variable bits
    /// before the register loop, while a plan composes at execution
    /// time — an interleaved touch of a pending slot would diverge.
    guarded: Vec<Option<PlanSlot>>,
    /// Per-slot shadow of the general interpreter's cache.
    slot_sym: Vec<SlotSym>,
    /// Per-cell shadow of the general interpreter's memory.
    cell_sym: Vec<CellSym>,
    /// Set when a nested conditional tested an entry-state variable
    /// that is not yet a selector dimension: the driver adds it to the
    /// enumeration and recompiles.
    need_dim: Option<VarId>,
    /// The first bail reason, for the loud fallback record.
    fail_reason: Option<String>,
}

impl<'a> PlanBuilder<'a> {
    fn new(env: &'a CompileEnv<'a>, params: &'a [FamilyParam], assign: Vec<(VarId, u64)>) -> Self {
        let mut b = PlanBuilder {
            env,
            params,
            assign,
            steps: Vec::new(),
            max_depth: 0,
            guarded: Vec::new(),
            slot_sym: vec![
                SlotSym {
                    known_mask: 0,
                    known_val: 0,
                    entry_mask: u64::MAX,
                    input_mask: 0
                };
                env.cache_slots
            ],
            cell_sym: vec![CellSym { known: None, entry: true }; env.mem_cells],
            need_dim: None,
            fail_reason: None,
        };
        // The variant's guards pin the tested variables' values: their
        // bits are statically known (and, for input-sourced dimensions,
        // already reflect the post-store state the general path
        // evaluates against).
        for i in 0..b.assign.len() {
            let (tv, v) = b.assign[i];
            let var = &env.vars[tv.0 as usize];
            if let Some(cell) = var.mem_cell {
                b.cell_sym[cell].known = Some(v);
            } else {
                for seg in &var.segs {
                    if let Some(slot) = fixed_slot(env.regs, seg) {
                        let m = seg.seg.reg_mask();
                        let sym = &mut b.slot_sym[slot];
                        sym.known_mask |= m;
                        sym.known_val = (sym.known_val & !m) | seg.seg.insert(v);
                    }
                }
            }
        }
        b
    }

    /// Records the first bail reason and aborts compilation.
    fn fail<T>(&mut self, why: impl Into<String>) -> Option<T> {
        if self.fail_reason.is_none() && self.need_dim.is_none() {
            self.fail_reason = Some(why.into());
        }
        None
    }

    /// Asks the driver to add `vid` as a selector dimension and retry.
    fn request_dim<T>(&mut self, vid: VarId) -> Option<T> {
        if self.fail_reason.is_none() && self.need_dim.is_none() {
            self.need_dim = Some(vid);
        }
        None
    }

    /// Records a visited recursion level; bails past the budget (the
    /// general interpreter would report `RecursionLimit`).
    fn note_depth(&mut self, depth: u32) -> Option<()> {
        self.max_depth = self.max_depth.max(depth);
        if depth > PLAN_MAX_DEPTH {
            return self.fail("action recursion exceeds the depth budget");
        }
        Some(())
    }

    /// Appends a step, enforcing the budget and the pending-slot guard,
    /// and applying the step's effect to the symbolic shadow state.
    fn emit(&mut self, step: PlanStep) -> Option<()> {
        if self.steps.len() >= PLAN_STEP_BUDGET {
            return self.fail("expansion exceeds the plan step budget");
        }
        if let Some(slot) = step.slot() {
            if self.guarded.iter().flatten().any(|g| slots_may_alias(g, slot)) {
                return self.fail("touches a register slot pending its own composed write");
            }
        }
        match &step {
            PlanStep::Read(a) => {
                let slot = a.slot.clone();
                self.sym_clobber(&slot);
            }
            PlanStep::Write(a, c) => {
                let slot = a.slot.clone();
                let (seg_in, seg_arg) = seg_value_masks(&c.segs);
                let (keep_and, const_or) = (c.keep_and, c.const_or);
                self.sym_write(&slot, keep_and, const_or, seg_in, seg_arg);
            }
            PlanStep::Store(slot, c) => {
                let slot = slot.clone();
                let (seg_in, seg_arg) = seg_value_masks(&c.segs);
                let (keep_and, const_or) = (c.keep_and, c.const_or);
                self.sym_write(&slot, keep_and, const_or, seg_in, seg_arg);
            }
            PlanStep::SetCell { cell, value } => {
                let known = match value {
                    PlanValue::Const(c) => Some(*c),
                    PlanValue::Input | PlanValue::Arg(_) => None,
                };
                self.cell_sym[*cell] = CellSym { known, entry: false };
            }
            PlanStep::BlockIn { .. } | PlanStep::BlockOut { .. } | PlanStep::Assemble { .. } => {
                unreachable!("symbolic execution never emits superplan steps")
            }
        }
        self.steps.push(step);
        Some(())
    }

    /// Marks every bit a slot (or, for indexed slots, its whole span)
    /// may hold as unknown and non-entry.
    fn sym_clobber(&mut self, slot: &PlanSlot) {
        let (lo, hi) = slot_span(slot);
        for s in lo..hi.min(self.slot_sym.len()) {
            self.slot_sym[s] =
                SlotSym { known_mask: 0, known_val: 0, entry_mask: 0, input_mask: 0 };
        }
    }

    /// Applies a masked store's effect to the shadow: cleared bits lose
    /// their entry status; constant bits become known; runtime-valued
    /// bits become unknown — except input-valued bits, which keep the
    /// knowledge the variant assignment pinned (input-sourced guards
    /// describe exactly the post-store value).
    fn sym_write(
        &mut self,
        slot: &PlanSlot,
        keep_and: u64,
        const_or: u64,
        seg_in: u64,
        seg_arg: u64,
    ) {
        let PlanSlot::Fixed(s) = slot else {
            self.sym_clobber(slot);
            return;
        };
        let sym = &mut self.slot_sym[*s];
        let clear = !keep_and;
        sym.entry_mask &= keep_and;
        sym.input_mask = (sym.input_mask & keep_and) | seg_in;
        let const_bits = clear & !seg_in & !seg_arg;
        let keep_known = keep_and | seg_in;
        sym.known_val = (sym.known_val & keep_known & !const_bits) | (const_or & const_bits);
        sym.known_mask = ((sym.known_mask & keep_known) | const_bits) & !seg_arg;
    }

    /// Applies the general path's up-front `store_var_bits` to the
    /// shadow: storing `value` into every register (or the cell) of
    /// `vid`, before the flattened order's conditions are evaluated.
    fn sym_store_var(&mut self, vid: VarId, value: PlanValue, args: &[PlanValue]) {
        let env = self.env;
        let var = &env.vars[vid.0 as usize];
        if let Some(cell) = var.mem_cell {
            let known = match value {
                PlanValue::Const(c) => Some(c),
                PlanValue::Input | PlanValue::Arg(_) => None,
            };
            self.cell_sym[cell] = CellSym { known, entry: false };
            return;
        }
        for seg in &var.segs {
            let m = seg.seg.reg_mask();
            let slot = {
                let reg_args = chunk_args(&seg.args, args);
                self.slot_for(seg.reg, &reg_args)
            };
            let Some(slot) = slot else {
                // Hashed family caches are invisible to guards and to
                // nested-condition classification; nothing to track.
                continue;
            };
            match value {
                PlanValue::Const(c) => self.sym_write(&slot, !m, seg.seg.insert(c), 0, 0),
                PlanValue::Input => self.sym_write(&slot, !m, 0, m, 0),
                PlanValue::Arg(_) => self.sym_write(&slot, !m, 0, 0, m),
            }
        }
    }

    /// The statically-determined value of a tested variable at the
    /// current point of the simulated access (see [`TestedValue`]).
    fn classify(&self, vid: VarId) -> TestedValue {
        let env = self.env;
        let var = &env.vars[vid.0 as usize];
        if !var.params.is_empty() {
            return TestedValue::Opaque;
        }
        if let Some(cell) = var.mem_cell {
            let sym = self.cell_sym[cell];
            if let Some(v) = sym.known {
                return TestedValue::Known(v);
            }
            return if sym.entry { TestedValue::Entry } else { TestedValue::Opaque };
        }
        let (mut v, mut known, mut entry) = (0u64, true, true);
        for seg in &var.segs {
            let Some(slot) = fixed_slot(env.regs, seg) else { return TestedValue::Opaque };
            let sym = self.slot_sym[slot];
            let m = seg.seg.reg_mask();
            if sym.known_mask & m == m {
                v |= seg.seg.extract(sym.known_val);
            } else {
                known = false;
            }
            // A bit still describable by a guard is either untouched
            // (entry-sourced, a Slot guard) or last stored with the
            // access's own input (an Input guard): `dim_info` derives
            // exactly that split from the written variable's segments.
            if (sym.entry_mask | sym.input_mask) & m != m {
                entry = false;
            }
        }
        if known {
            TestedValue::Known(v)
        } else if entry {
            TestedValue::Entry
        } else {
            TestedValue::Opaque
        }
    }

    /// Flattens a serialization order reached through an action,
    /// evaluating its conditions against the symbolic shadow. A tested
    /// variable whose mid-access value is statically known (assigned
    /// constants, variant guards) folds directly; one still holding its
    /// entry state becomes a new selector dimension of the outer
    /// enumeration; anything else keeps the general path — loudly.
    fn flatten_nested(&mut self, order: &[SerStep]) -> Option<Vec<RegId>> {
        let mut tested = Vec::new();
        collect_cond_vars(order, &mut tested);
        let mut assign: Vec<(VarId, u64)> = Vec::with_capacity(tested.len());
        for tv in tested {
            match self.classify(tv) {
                TestedValue::Known(v) => assign.push((tv, v)),
                TestedValue::Entry => return self.request_dim(tv),
                TestedValue::Opaque => {
                    let name = self.env.vars[tv.0 as usize].name.clone();
                    return self.fail(format!(
                        "nested conditional tests `{name}`, whose mid-access value is not static"
                    ));
                }
            }
        }
        let mut flat = Vec::new();
        flatten_order(order, &assign, &mut flat);
        Some(flat)
    }

    /// The plan slot of a register instance. Bails on hashed families
    /// and on argument domains not fully indexable.
    fn slot_for(&self, rid: RegId, reg_args: &[PlanValue]) -> Option<PlanSlot> {
        let reg = &self.env.regs[rid.0 as usize];
        if let Some(s) = reg.slot {
            return Some(PlanSlot::Fixed(s));
        }
        let fam = reg.family_slots.as_ref()?;
        if fam.dims.len() != reg_args.len() {
            return None;
        }
        let mut base = fam.base;
        let mut dims = Vec::new();
        for (dim, arg) in fam.dims.iter().zip(reg_args) {
            match arg {
                PlanValue::Const(c) => base += dim.index_of(*c)? * dim.stride,
                PlanValue::Arg(i) => {
                    // Every value the caller may pass must be indexable.
                    let domain = self.params.get(*i)?;
                    if !domain.iter().all(|v| dim.index_of(v).is_some()) {
                        return None;
                    }
                    dims.push((*i, dim.clone()));
                }
                PlanValue::Input => return None,
            }
        }
        Some(if dims.is_empty() { PlanSlot::Fixed(base) } else { PlanSlot::Indexed { base, dims } })
    }

    /// The register offset as a plan offset.
    fn offset_for(binding: &PortBinding, reg_args: &[PlanValue]) -> Option<PlanOffset> {
        match binding.offset {
            Offset::Const(c) => Some(PlanOffset::Const(c)),
            Offset::Param(i) => match reg_args.get(i)? {
                PlanValue::Const(c) => Some(PlanOffset::Const(*c)),
                PlanValue::Arg(j) => Some(PlanOffset::Arg(*j)),
                PlanValue::Input => None,
            },
        }
    }

    /// The family args variable `vid` uses for register `rid` (the
    /// general path's `args_for_reg`: first matching segment wins).
    fn reg_args_for(&self, vid: VarId, rid: RegId, var_args: &[PlanValue]) -> Vec<PlanValue> {
        let var = &self.env.vars[vid.0 as usize];
        for seg in &var.segs {
            if seg.reg == rid {
                return chunk_args(&seg.args, var_args);
            }
        }
        Vec::new()
    }

    /// Mirrors the general path's write composition for one variable on
    /// one register: clear own segments and trigger neighbours, fold
    /// neutral substitutions and constant values, keep the rest cached.
    fn compose_one(&self, vid: VarId, rid: RegId, value: PlanValue) -> WriteCompose {
        let reg = &self.env.regs[rid.0 as usize];
        let var = &self.env.vars[vid.0 as usize];
        let mut clear = 0u64;
        let mut const_or = 0u64;
        let mut segs = Vec::new();
        for s in &var.segs {
            if s.reg == rid {
                clear |= s.seg.reg_mask();
                match value {
                    PlanValue::Const(c) => const_or |= s.seg.insert(c),
                    v => segs.push(WriteSeg { seg: s.seg, value: v }),
                }
            }
        }
        for field in &reg.fields {
            if field.var == vid {
                continue;
            }
            let other = &self.env.vars[field.var.0 as usize];
            if other.behavior.write_trigger {
                if let Some(neutral) = other.neutral {
                    let nv = match neutral {
                        Neutral::Except(n) => n,
                        // `for X`: every value except X is neutral.
                        Neutral::For(x) => u64::from(x == 0),
                    };
                    clear |= field.reg_mask();
                    const_or |= field.insert(nv);
                }
            }
        }
        WriteCompose {
            keep_and: !clear,
            const_or,
            segs,
            out_and: reg.and_mask,
            out_or: reg.or_mask,
        }
    }

    /// Simulates one register write: pre-actions, composed masked
    /// write, post/set actions. `unguard` is the index of the caller's
    /// pending-slot entry to release just before the write emits.
    fn write_reg(
        &mut self,
        rid: RegId,
        reg_args: &[PlanValue],
        compose: WriteCompose,
        unguard: Option<usize>,
        depth: u32,
    ) -> Option<()> {
        self.note_depth(depth)?;
        let reg = &self.env.regs[rid.0 as usize];
        let (pre, post, set) = (reg.pre.clone(), reg.post.clone(), reg.set.clone());
        let name = &reg.name;
        let Some(binding) = reg.write.clone() else {
            return self.fail(format!("register `{name}` is not writable"));
        };
        let (port, size) = (binding.port.0, reg.size);
        let Some(slot) = self.slot_for(rid, reg_args) else {
            return self.fail(format!("register `{name}` has no indexed cache slot"));
        };
        let Some(offset) = Self::offset_for(&binding, reg_args) else {
            return self.fail(format!("register `{name}` has no static port offset"));
        };
        // The register's own slot is pending while its pre-actions run
        // (the general path composed the raw value before them).
        let own_guard = self.guarded.len();
        self.guarded.push(Some(slot.clone()));
        self.actions(&pre, reg_args, depth + 1)?;
        self.guarded[own_guard] = None;
        if let Some(i) = unguard {
            self.guarded[i] = None;
        }
        self.emit(PlanStep::Write(AccessStep { reg: rid, slot, port, offset, size }, compose))?;
        self.actions(&post, reg_args, depth + 1)?;
        self.actions(&set, reg_args, depth + 1)
    }

    /// Simulates one register read: pre-actions, read, post/set.
    fn read_reg(&mut self, rid: RegId, reg_args: &[PlanValue], depth: u32) -> Option<()> {
        self.note_depth(depth)?;
        let reg = &self.env.regs[rid.0 as usize];
        let (pre, post, set) = (reg.pre.clone(), reg.post.clone(), reg.set.clone());
        let name = &reg.name;
        let Some(binding) = reg.read.clone() else {
            return self.fail(format!("register `{name}` is not readable"));
        };
        let (port, size) = (binding.port.0, reg.size);
        let Some(slot) = self.slot_for(rid, reg_args) else {
            return self.fail(format!("register `{name}` has no indexed cache slot"));
        };
        let Some(offset) = Self::offset_for(&binding, reg_args) else {
            return self.fail(format!("register `{name}` has no static port offset"));
        };
        self.actions(&pre, reg_args, depth + 1)?;
        self.emit(PlanStep::Read(AccessStep { reg: rid, slot, port, offset, size }))?;
        self.actions(&post, reg_args, depth + 1)?;
        self.actions(&set, reg_args, depth + 1)
    }

    /// Simulates a variable read over a pre-flattened register order.
    fn read_var_ordered(&mut self, vid: VarId, args: &[PlanValue], order: &[RegId]) -> Option<()> {
        let var = &self.env.vars[vid.0 as usize];
        if var.mem_cell.is_some() || !var.readable {
            let name = &var.name;
            return self.fail(format!("variable `{name}` has no register read path"));
        }
        for &rid in order {
            let reg_args = self.reg_args_for(vid, rid, args);
            self.read_reg(rid, &reg_args, 0)?;
        }
        Some(())
    }

    /// Simulates a variable write reached through an action. The
    /// general path stores the new bits, then evaluates the order's
    /// conditions — so the shadow store happens before the nested
    /// flatten, whose conditions fold against it (or become outer
    /// selector dimensions; see [`Self::flatten_nested`]).
    fn write_var(
        &mut self,
        vid: VarId,
        value: PlanValue,
        args: &[PlanValue],
        depth: u32,
    ) -> Option<()> {
        self.sym_store_var(vid, value, args);
        let order_steps = self.env.vars[vid.0 as usize].write_order.clone();
        let order = self.flatten_nested(&order_steps)?;
        self.write_var_ordered(vid, value, args, &order, depth)
    }

    /// Simulates a variable write over a pre-flattened register order:
    /// the general path's store/compose fused per register (plus
    /// cache-only stores for registers the order does not flush), then
    /// the variable's own set actions.
    fn write_var_ordered(
        &mut self,
        vid: VarId,
        value: PlanValue,
        args: &[PlanValue],
        order: &[RegId],
        depth: u32,
    ) -> Option<()> {
        self.note_depth(depth)?;
        let var = &self.env.vars[vid.0 as usize];
        if var.params.len() != args.len() {
            let name = &var.name;
            return self.fail(format!("arity mismatch writing `{name}`"));
        }
        let set = var.set.clone();
        if let Some(cell) = var.mem_cell {
            self.emit(PlanStep::SetCell { cell, value })?;
            return self.actions(&set, args, depth + 1);
        }
        if !var.writable {
            let name = &var.name;
            return self.fail(format!("variable `{name}` is not writable"));
        }
        // Orders name registers, not instances: a variable spanning two
        // instances of one family register cannot attribute its bits
        // per instance in either the fused flush or a cache-only store.
        if spans_multiple_instances(var) {
            let name = &var.name;
            return self.fail(format!(
                "variable `{name}` spans multiple instances of one register family"
            ));
        }
        // The general path stores the new bits into every backing
        // register's cache up front. Registers the order flushes fuse
        // the store into their composed write; registers it does not
        // flush get an explicit cache-only store first, so later
        // composes (and the final cache) see the bits exactly as the
        // general path leaves them.
        self.sym_store_var(vid, value, args);
        let mut stored: Vec<RegId> = Vec::new();
        for s in &var.segs {
            if !order.contains(&s.reg) && !stored.contains(&s.reg) {
                stored.push(s.reg);
            }
        }
        for rid in stored {
            let reg_args = self.reg_args_for(vid, rid, args);
            let Some(slot) = self.slot_for(rid, &reg_args) else {
                let name = &self.env.regs[rid.0 as usize].name;
                return self.fail(format!("stores into `{name}`, which has no indexed slot"));
            };
            let (clear, const_or, segs) =
                gather_reg_compose(var.segs.iter().map(|s| (s, value)), rid);
            self.emit(PlanStep::Store(slot, StoreCompose { keep_and: !clear, const_or, segs }))?;
        }
        let guard_start = self.guarded.len();
        for &rid in order {
            let reg_args = self.reg_args_for(vid, rid, args);
            let Some(slot) = self.slot_for(rid, &reg_args) else {
                let name = &self.env.regs[rid.0 as usize].name;
                return self.fail(format!("register `{name}` has no indexed cache slot"));
            };
            self.guarded.push(Some(slot));
        }
        for (k, &rid) in order.iter().enumerate() {
            let reg_args = self.reg_args_for(vid, rid, args);
            let compose = self.compose_one(vid, rid, value);
            // The general path enters `write_register` at depth + 1.
            self.write_reg(rid, &reg_args, compose, Some(guard_start + k), depth + 1)?;
        }
        self.guarded.truncate(guard_start);
        self.actions(&set, args, depth + 1)
    }

    /// Simulates an action list. `ctx` supplies `Param` references
    /// (family arguments of the enclosing register or variable).
    fn actions(&mut self, actions: &[Action], ctx: &[PlanValue], depth: u32) -> Option<()> {
        for action in actions {
            self.note_depth(depth)?;
            match (&action.target, &action.value) {
                (ActionTarget::Var(vid), value) => {
                    let Some(v) = Self::action_value(value, ctx) else {
                        return self.fail("action value is read from another variable at run time");
                    };
                    self.write_var(*vid, v, &[], depth + 1)?;
                }
                (ActionTarget::Struct(sid), ActionValue::Struct(fields)) => {
                    let mut assigned = Vec::with_capacity(fields.len());
                    for (fid, fval) in fields {
                        let Some(v) = Self::action_value(fval, ctx) else {
                            return self
                                .fail("action value is read from another variable at run time");
                        };
                        assigned.push((*fid, v));
                    }
                    self.write_struct_fields(*sid, &assigned, depth + 1)?;
                }
                (ActionTarget::Struct(_), _) => return self.fail("malformed structure action"),
            }
        }
        Some(())
    }

    /// An action value as a plan value, when statically known.
    fn action_value(value: &ActionValue, ctx: &[PlanValue]) -> Option<PlanValue> {
        match value {
            ActionValue::Const(c) => Some(PlanValue::Const(*c)),
            ActionValue::Any => Some(PlanValue::Const(0)),
            // The general path defaults missing params to 0.
            ActionValue::Param(i) => Some(ctx.get(*i).copied().unwrap_or(PlanValue::Const(0))),
            ActionValue::Var(_) | ActionValue::Struct(_) => None,
        }
    }

    /// Simulates a struct-valued action: assigned field bits stored
    /// up-front by the general path (memory cells directly, register
    /// bits into the shadow), then the flush — whose conditions are
    /// evaluated against exactly that post-store state.
    fn write_struct_fields(
        &mut self,
        sid: StructId,
        assigned: &[(VarId, PlanValue)],
        depth: u32,
    ) -> Option<()> {
        self.note_depth(depth)?;
        for &(fid, v) in assigned {
            let f = &self.env.vars[fid.0 as usize];
            if !f.params.is_empty() {
                let name = &f.name;
                return self.fail(format!("action assigns parameterized field `{name}`"));
            }
            if spans_multiple_instances(f) {
                let name = &f.name;
                return self.fail(format!(
                    "field `{name}` spans multiple instances of one register family"
                ));
            }
            if let Some(cell) = f.mem_cell {
                self.emit(PlanStep::SetCell { cell, value: v })?;
            } else {
                self.sym_store_var(fid, v, &[]);
            }
        }
        self.flush_struct(sid, assigned, depth)
    }

    /// Simulates `write_struct` reached through an action. Conditional
    /// orders flatten against the symbolic shadow (assigned constants
    /// fold; entry-state tested variables become outer selector
    /// dimensions; see [`Self::flatten_nested`]).
    fn flush_struct(
        &mut self,
        sid: StructId,
        assigned: &[(VarId, PlanValue)],
        depth: u32,
    ) -> Option<()> {
        let order_steps = self.env.structs[sid.0 as usize].write_order.clone();
        let order = self.flatten_nested(&order_steps)?;
        self.flush_struct_ordered(sid, assigned, &order, depth)
    }

    /// Simulates `write_struct` over a pre-flattened register order:
    /// compose every register from the cache (plus the `assigned` field
    /// inserts) and write it, then run field-level set actions.
    /// Assigned bits on registers the order does not flush are stored
    /// cache-only first, exactly like the general path's up-front
    /// `store_var_bits`.
    fn flush_struct_ordered(
        &mut self,
        sid: StructId,
        assigned: &[(VarId, PlanValue)],
        order: &[RegId],
        depth: u32,
    ) -> Option<()> {
        self.note_depth(depth)?;
        let st = &self.env.structs[sid.0 as usize];
        let fields = st.fields.clone();
        let mut stored: Vec<RegId> = Vec::new();
        for &(fid, _) in assigned {
            for s in &self.env.vars[fid.0 as usize].segs {
                if !order.contains(&s.reg) && !stored.contains(&s.reg) {
                    stored.push(s.reg);
                }
            }
        }
        for rid in stored {
            let Some(slot) = self.slot_for(rid, &[]) else {
                let name = &self.env.regs[rid.0 as usize].name;
                return self.fail(format!("stores into `{name}`, which has no indexed slot"));
            };
            let vars = self.env.vars;
            let (clear, const_or, segs) = gather_reg_compose(
                assigned
                    .iter()
                    .flat_map(|&(fid, v)| vars[fid.0 as usize].segs.iter().map(move |s| (s, v))),
                rid,
            );
            self.emit(PlanStep::Store(slot, StoreCompose { keep_and: !clear, const_or, segs }))?;
        }
        // Assigned register-backed bits are inserted at each register's
        // write step; guard the pending slots (store/compose inversion,
        // as in `write_var`).
        let guard_start = self.guarded.len();
        for &rid in order {
            let Some(slot) = self.slot_for(rid, &[]) else {
                let name = &self.env.regs[rid.0 as usize].name;
                return self.fail(format!("register `{name}` has no indexed cache slot"));
            };
            self.guarded.push(Some(slot));
        }
        for (k, &rid) in order.iter().enumerate() {
            let reg = &self.env.regs[rid.0 as usize];
            let vars = self.env.vars;
            let (clear, const_or, segs) = gather_reg_compose(
                assigned
                    .iter()
                    .flat_map(|&(fid, v)| vars[fid.0 as usize].segs.iter().map(move |s| (s, v))),
                rid,
            );
            let compose = WriteCompose {
                keep_and: !clear,
                const_or,
                segs,
                out_and: reg.and_mask,
                out_or: reg.or_mask,
            };
            // The general path enters `write_register` at depth + 1.
            self.write_reg(rid, &[], compose, Some(guard_start + k), depth + 1)?;
        }
        self.guarded.truncate(guard_start);
        for &fid in fields.iter() {
            let set = self.env.vars[fid.0 as usize].set.clone();
            self.actions(&set, &[], depth + 1)?;
        }
        Some(())
    }

    /// Simulates `read_struct` over a pre-flattened register order:
    /// every register once.
    fn read_struct_ordered(&mut self, order: &[RegId]) -> Option<()> {
        for &rid in order {
            self.read_reg(rid, &[], 0)?;
        }
        Some(())
    }
}

/// The family args of one segment as plan values.
fn chunk_args(args: &[ChunkArg], var_args: &[PlanValue]) -> Vec<PlanValue> {
    args.iter()
        .map(|a| match a {
            ChunkArg::Const(c) => PlanValue::Const(*c),
            ChunkArg::Param(i) => var_args[*i],
        })
        .collect()
}

/// Collects the variables a serialization order's conditionals test.
fn collect_cond_vars(steps: &[SerStep], out: &mut Vec<VarId>) {
    for s in steps {
        if let SerStep::If { cond, then, els } = s {
            cond_vars(cond, out);
            collect_cond_vars(then, out);
            collect_cond_vars(els, out);
        }
    }
}

fn cond_vars(cond: &CondSem, out: &mut Vec<VarId>) {
    match cond {
        CondSem::Cmp { var, .. } => {
            if !out.contains(var) {
                out.push(*var);
            }
        }
        CondSem::And(a, b) | CondSem::Or(a, b) => {
            cond_vars(a, out);
            cond_vars(b, out);
        }
        CondSem::Not(a) => cond_vars(a, out),
    }
}

/// Evaluates a guard condition under a static assignment of raw values
/// to the tested variables (every tested variable is assigned).
fn eval_cond_static(cond: &CondSem, assign: &[(VarId, u64)]) -> bool {
    match cond {
        CondSem::Cmp { var, eq, value } => {
            let v = assign.iter().find(|(id, _)| id == var).map_or(0, |&(_, v)| v);
            (v == *value) == *eq
        }
        CondSem::And(a, b) => eval_cond_static(a, assign) && eval_cond_static(b, assign),
        CondSem::Or(a, b) => eval_cond_static(a, assign) || eval_cond_static(b, assign),
        CondSem::Not(a) => !eval_cond_static(a, assign),
    }
}

/// Flattens an order to register ids under a static assignment (every
/// conditional is decidable).
fn flatten_order(steps: &[SerStep], assign: &[(VarId, u64)], out: &mut Vec<RegId>) {
    for s in steps {
        match s {
            SerStep::Reg(r) => out.push(*r),
            SerStep::If { cond, then, els } => {
                if eval_cond_static(cond, assign) {
                    flatten_order(then, assign, out);
                } else {
                    flatten_order(els, assign, out);
                }
            }
        }
    }
}

/// The fixed cache slot a tested variable's segment resolves to, when
/// statically known: a concrete register, or a family instance with
/// constant arguments inside an indexed slot range.
fn fixed_slot(regs: &[RegIr], seg: &VarSeg) -> Option<usize> {
    let reg = &regs[seg.reg.0 as usize];
    if let Some(s) = reg.slot {
        return Some(s);
    }
    let args: Option<Vec<u64>> = seg
        .args
        .iter()
        .map(|a| match a {
            ChunkArg::Const(c) => Some(*c),
            ChunkArg::Param(_) => None,
        })
        .collect();
    reg.family_slots.as_ref()?.slot_of(&args?)
}

/// Whether a variable's segments address two *different instances* of
/// the same register (family) id. Serialization orders name registers,
/// not instances, so neither the flattened flush loop nor a cache-only
/// store can attribute such a variable's bits per instance — those
/// writes keep the general path.
fn spans_multiple_instances(var: &VarIr) -> bool {
    var.segs
        .iter()
        .enumerate()
        .any(|(i, a)| var.segs[i + 1..].iter().any(|b| a.reg == b.reg && a.args != b.args))
}

/// Accumulates one register's write-composition pieces — cleared bits,
/// folded constants, runtime segment inserts — over `(segment, value)`
/// pairs, keeping only segments on `rid`. Shared by the fused-write
/// and cache-only-store builders so segment-to-register attribution
/// cannot diverge between them.
fn gather_reg_compose<'s>(
    pairs: impl Iterator<Item = (&'s VarSeg, PlanValue)>,
    rid: RegId,
) -> (u64, u64, Vec<WriteSeg>) {
    let mut clear = 0u64;
    let mut const_or = 0u64;
    let mut segs = Vec::new();
    for (s, v) in pairs {
        if s.reg != rid {
            continue;
        }
        clear |= s.seg.reg_mask();
        match v {
            PlanValue::Const(c) => const_or |= s.seg.insert(c),
            v => segs.push(WriteSeg { seg: s.seg, value: v }),
        }
    }
    (clear, const_or, segs)
}

/// The union of a write step's runtime-valued segment masks, split by
/// value source: `(input-valued bits, argument-valued bits)`.
fn seg_value_masks(segs: &[WriteSeg]) -> (u64, u64) {
    let mut seg_in = 0u64;
    let mut seg_arg = 0u64;
    for ws in segs {
        match ws.value {
            PlanValue::Input => seg_in |= ws.seg.reg_mask(),
            PlanValue::Arg(_) => seg_arg |= ws.seg.reg_mask(),
            PlanValue::Const(_) => {}
        }
    }
    (seg_in, seg_arg)
}

/// Everything needed to enumerate, guard and select one tested
/// variable of a guard-split plan.
struct DimInfo {
    /// Memory cell holding the tested value, for cell-tested variables.
    cell: Option<usize>,
    /// `(slot, segment, cache-sourced register-bit mask)` — the mask
    /// excludes bits the written variable owns (those come from the
    /// input at evaluation time).
    cache_segs: Vec<(usize, FieldSeg, u64)>,
    /// Input-bit → value-bit segments (written-variable overlap).
    input_segs: Vec<FieldSeg>,
    /// Tested-value bits sourced from the input.
    input_mask: u64,
    /// `2^width`.
    radix: usize,
}

/// Describes how one tested variable's value is obtained at dispatch
/// time, or why it cannot be (the loud fallback cause).
fn dim_info(
    tv: VarId,
    vars: &[VarIr],
    regs: &[RegIr],
    written: Option<VarId>,
) -> Result<DimInfo, String> {
    let var = &vars[tv.0 as usize];
    if !var.params.is_empty() {
        return Err(format!("condition tests parameterized variable `{}`", var.name));
    }
    if var.width >= 64 {
        return Err(format!("condition tests 64-bit-wide variable `{}`", var.name));
    }
    let radix = 1usize << var.width;
    if let Some(cell) = var.mem_cell {
        return Ok(DimInfo {
            cell: Some(cell),
            cache_segs: Vec::new(),
            input_segs: Vec::new(),
            input_mask: 0,
            radix,
        });
    }
    let w_segs: &[VarSeg] = written.map_or(&[], |w| &vars[w.0 as usize].segs[..]);
    let mut cache_segs = Vec::new();
    let mut input_segs = Vec::new();
    let mut input_mask = 0u64;
    for seg in &var.segs {
        let Some(slot) = fixed_slot(regs, seg) else {
            return Err(format!("tested variable `{}` has no fixed cache slot", var.name));
        };
        let mut cmask = seg.seg.reg_mask();
        for ws in w_segs {
            if ws.reg != seg.reg || ws.seg.reg_mask() & seg.seg.reg_mask() == 0 {
                continue;
            }
            // Same register id with overlapping bits — but for family
            // registers only the same concrete *instance* aliases. The
            // tested segment's arguments are constants (`fixed_slot`
            // above); a written segment with runtime arguments may or
            // may not hit the tested instance, which no static guard
            // can describe.
            if ws.args != seg.args {
                if ws.args.iter().any(|a| matches!(a, ChunkArg::Param(_))) {
                    return Err(format!(
                        "tested variable `{}` shares a family register with a \
                         runtime-indexed written segment",
                        var.name
                    ));
                }
                // A different constant instance: different slot, the
                // store cannot touch the tested bits — cache-sourced.
                continue;
            }
            // The written variable owns these register bits; the
            // general path stores them before evaluating conditions,
            // so the tested value takes them from the caller's input.
            let lo = ws.seg.reg_lo.max(seg.seg.reg_lo);
            let hi = ws.seg.reg_hi.min(seg.seg.reg_hi);
            let out_lo = lo - seg.seg.reg_lo + seg.seg.var_lo;
            input_segs.push(FieldSeg {
                var: tv,
                reg_hi: hi - ws.seg.reg_lo + ws.seg.var_lo,
                reg_lo: lo - ws.seg.reg_lo + ws.seg.var_lo,
                var_lo: out_lo,
            });
            let w = hi - lo + 1;
            let m = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            input_mask |= m << out_lo;
            cmask &= !(ws.seg.reg_mask() & seg.seg.reg_mask());
        }
        cache_segs.push((slot, seg.seg, cmask));
    }
    Ok(DimInfo { cell: None, cache_segs, input_segs, input_mask, radix })
}

/// The guards pinning one dimension to the enumerated value `v`.
fn dim_guards(dim: &DimInfo, v: u64, out: &mut Vec<PlanGuard>) {
    if let Some(cell) = dim.cell {
        out.push(PlanGuard { source: GuardSource::Cell(cell), mask: u64::MAX, expected: v });
        return;
    }
    for &(slot, seg, cmask) in &dim.cache_segs {
        if cmask != 0 {
            out.push(PlanGuard {
                source: GuardSource::Slot(slot),
                mask: cmask,
                expected: seg.insert(v) & cmask,
            });
        }
    }
    for seg in &dim.input_segs {
        out.push(PlanGuard {
            source: GuardSource::Input,
            mask: seg.reg_mask(),
            expected: seg.insert(v),
        });
    }
}

fn selector_dim(dim: &DimInfo) -> SelectorDim {
    SelectorDim {
        segs: dim.cache_segs.iter().map(|&(s, seg, _)| (s, seg)).collect(),
        input_segs: dim.input_segs.clone(),
        input_mask: dim.input_mask,
        cell: dim.cell,
        radix: dim.radix,
    }
}

/// Guard-splits and compiles one access: enumerates the raw-value
/// cross product of every tested variable — the order's own conditions
/// plus any nested conditional dimensions the symbolic execution
/// discovers (`PlanBuilder::need_dim`) — and compiles one straight-line
/// variant per combination into the arena (rolled back wholesale on
/// failure, leaving no dead steps). Variants are laid out in
/// mixed-radix order of the tested values (first dimension most
/// significant), matching [`AccessPlan::select_variant`]'s indexing.
/// `written` names the variable whose write this is, so conditions
/// testing it guard on the caller's input (store-then-evaluate order).
/// `Err` carries the loud fallback cause.
#[allow(clippy::type_complexity)]
fn compile_guarded(
    env: &CompileEnv,
    order: &[SerStep],
    written: Option<VarId>,
    params: &[FamilyParam],
    arena: &mut Vec<PlanStep>,
    body: &mut dyn FnMut(&mut PlanBuilder, &[RegId]) -> Option<()>,
) -> Result<(Vec<SelectorDim>, Vec<PlanVariant>, u32), String> {
    let mut tested: Vec<VarId> = Vec::new();
    collect_cond_vars(order, &mut tested);
    'retry: loop {
        let mut dims = Vec::with_capacity(tested.len());
        let mut domain: u128 = 1;
        for &tv in &tested {
            let dim = dim_info(tv, env.vars, env.regs, written)?;
            domain = domain
                .checked_mul(dim.radix as u128)
                .filter(|&d| d <= GUARD_DOMAIN_CAP)
                .ok_or_else(|| {
                    format!("guard domain exceeds the {GUARD_DOMAIN_CAP}-combination cap")
                })?;
            dims.push(dim);
        }
        let rollback = arena.len();
        let mut variants = Vec::with_capacity(domain as usize);
        let mut max_depth = 0;
        let mut assign: Vec<(VarId, u64)> = tested.iter().map(|&tv| (tv, 0)).collect();
        loop {
            let mut b = PlanBuilder::new(env, params, assign.clone());
            let mut flat = Vec::new();
            flatten_order(order, &assign, &mut flat);
            if body(&mut b, &flat).is_none() {
                arena.truncate(rollback);
                if let Some(nv) = b.need_dim {
                    if tested.contains(&nv) {
                        return Err(format!(
                            "nested conditional re-tests `{}` after its bits changed mid-access",
                            env.vars[nv.0 as usize].name
                        ));
                    }
                    tested.push(nv);
                    continue 'retry;
                }
                return Err(b.fail_reason.unwrap_or_else(|| "plan compilation bailed".into()));
            }
            max_depth = max_depth.max(b.max_depth);
            let mut guards = Vec::new();
            for (dim, &(_, v)) in dims.iter().zip(&assign) {
                dim_guards(dim, v, &mut guards);
            }
            let start = arena.len() as u32;
            arena.extend(b.steps);
            variants.push(PlanVariant { guards, start, len: arena.len() as u32 - start });
            // Mixed-radix increment, last dimension fastest.
            let mut i = assign.len();
            loop {
                if i == 0 {
                    return Ok((dims.iter().map(selector_dim).collect(), variants, max_depth));
                }
                i -= 1;
                if assign[i].1 + 1 < dims[i].radix as u64 {
                    assign[i].1 += 1;
                    break;
                }
                assign[i].1 = 0;
            }
        }
    }
}

/// Whether any register in the order (both branches of conditionals
/// included) supports the access direction — gates the loud fallback
/// record, so impossible directions (e.g. reading a write-only
/// structure) are not reported as compilation failures.
fn order_usable(regs: &[RegIr], steps: &[SerStep], write: bool) -> bool {
    steps.iter().any(|s| match s {
        SerStep::Reg(r) => {
            let reg = &regs[r.0 as usize];
            if write {
                reg.writable()
            } else {
                reg.readable()
            }
        }
        SerStep::If { then, els, .. } => {
            order_usable(regs, then, write) || order_usable(regs, els, write)
        }
    })
}

/// Compiles the read/write plans for one variable, when the access
/// qualifies (see [`AccessPlan`]). Compiled steps land in `arena`;
/// failures land in `fallbacks` with their cause. Memory-cell
/// variables compile too: reads serve the cell directly, writes store
/// it and fold the variable's set actions.
fn compile_var_plans(
    vid: VarId,
    env: &CompileEnv,
    arena: &mut Vec<PlanStep>,
    fallbacks: &mut Vec<PlanFallback>,
) -> (Option<Arc<AccessPlan>>, Option<Arc<AccessPlan>>) {
    let var = &env.vars[vid.0 as usize];
    if var.mem_cell.is_some() {
        if !var.params.is_empty() {
            return (None, None);
        }
        let cell = var.mem_cell;
        let read = var.readable.then(|| {
            Arc::new(AccessPlan {
                variants: vec![PlanVariant {
                    guards: Vec::new(),
                    start: arena.len() as u32,
                    len: 0,
                }],
                selector: Vec::new(),
                assemble: Vec::new(),
                cell,
                max_depth: 0,
            })
        });
        // The write compiles through the guard-split driver even though
        // a cell has no order of its own: set actions may reach nested
        // conditional orders, whose entry-state tested variables then
        // become selector dimensions (and whose bail causes are
        // recorded) exactly like register-backed writes.
        let write = if var.writable {
            match compile_guarded(env, &[], None, &var.params, arena, &mut |b, _order| {
                b.write_var_ordered(vid, PlanValue::Input, &[], &[], 0)
            }) {
                Ok((selector, variants, max_depth)) => Some(Arc::new(AccessPlan {
                    variants,
                    selector,
                    assemble: Vec::new(),
                    cell: None,
                    max_depth,
                })),
                Err(cause) => {
                    fallbacks.push(PlanFallback { access: format!("write {}", var.name), cause });
                    None
                }
            }
        } else {
            None
        };
        return (read, write);
    }
    let args: Vec<PlanValue> = (0..var.params.len()).map(PlanValue::Arg).collect();
    let read = if var.readable {
        let b = PlanBuilder::new(env, &var.params, Vec::new());
        let assemble: Option<Vec<(PlanSlot, FieldSeg)>> = var
            .segs
            .iter()
            .map(|s| b.slot_for(s.reg, &chunk_args(&s.args, &args)).map(|slot| (slot, s.seg)))
            .collect();
        match assemble {
            None => {
                fallbacks.push(PlanFallback {
                    access: format!("read {}", var.name),
                    cause: "assembles from a hashed family cache".into(),
                });
                None
            }
            Some(assemble) => match compile_guarded(
                env,
                &var.read_order,
                None,
                &var.params,
                arena,
                &mut |b, order| b.read_var_ordered(vid, &args, order),
            ) {
                Ok((selector, variants, max_depth)) => Some(Arc::new(AccessPlan {
                    variants,
                    selector,
                    assemble,
                    cell: None,
                    max_depth,
                })),
                Err(cause) => {
                    fallbacks.push(PlanFallback { access: format!("read {}", var.name), cause });
                    None
                }
            },
        }
    } else {
        None
    };
    let write = if var.writable {
        match compile_guarded(
            env,
            &var.write_order,
            Some(vid),
            &var.params,
            arena,
            &mut |b, order| b.write_var_ordered(vid, PlanValue::Input, &args, order, 0),
        ) {
            Ok((selector, variants, max_depth)) => Some(Arc::new(AccessPlan {
                variants,
                selector,
                assemble: Vec::new(),
                cell: None,
                max_depth,
            })),
            Err(cause) => {
                fallbacks.push(PlanFallback { access: format!("write {}", var.name), cause });
                None
            }
        }
    } else {
        None
    };
    (read, write)
}

/// Compiles the read/write plans for one structure (an [`AccessPlan`]
/// with an empty assemble list — field getters use
/// [`VarIr::slot_assemble`] instead). Conditional orders guard-split:
/// the general path evaluates every condition against the cache before
/// the first access, which is exactly the state the entry guards see.
fn compile_struct_plans(
    sid: StructId,
    env: &CompileEnv,
    arena: &mut Vec<PlanStep>,
    fallbacks: &mut Vec<PlanFallback>,
) -> (Option<Arc<AccessPlan>>, Option<Arc<AccessPlan>>) {
    let st = &env.structs[sid.0 as usize];
    let read = match compile_guarded(env, &st.read_order, None, &[], arena, &mut |b, order| {
        b.read_struct_ordered(order)
    }) {
        Ok((selector, variants, max_depth)) => Some(Arc::new(AccessPlan {
            variants,
            selector,
            assemble: Vec::new(),
            cell: None,
            max_depth,
        })),
        Err(cause) => {
            if order_usable(env.regs, &st.read_order, false) {
                fallbacks.push(PlanFallback { access: format!("read struct {}", st.name), cause });
            }
            None
        }
    };
    let write = match compile_guarded(env, &st.write_order, None, &[], arena, &mut |b, order| {
        b.flush_struct_ordered(sid, &[], order, 0)
    }) {
        Ok((selector, variants, max_depth)) => Some(Arc::new(AccessPlan {
            variants,
            selector,
            assemble: Vec::new(),
            cell: None,
            max_depth,
        })),
        Err(cause) => {
            if order_usable(env.regs, &st.write_order, true) {
                fallbacks.push(PlanFallback { access: format!("write struct {}", st.name), cause });
            }
            None
        }
    };
    (read, write)
}

impl DeviceIr {
    /// Looks a variable up by name (binary search over the interned
    /// name table — no hashing, no linear scan).
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.var_names
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.var_names[i].1)
    }

    /// Looks a structure up by name.
    pub fn struct_id(&self, name: &str) -> Option<StructId> {
        self.struct_names
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.struct_names[i].1)
    }

    /// Looks a register up by name.
    pub fn reg_id(&self, name: &str) -> Option<RegId> {
        self.reg_names
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.reg_names[i].1)
    }

    /// The variable for an id.
    pub fn var(&self, id: VarId) -> &VarIr {
        &self.vars[id.0 as usize]
    }

    /// The register for an id.
    pub fn reg(&self, id: RegId) -> &RegIr {
        &self.regs[id.0 as usize]
    }

    /// The structure for an id.
    pub fn strct(&self, id: StructId) -> &StructIr {
        &self.structs[id.0 as usize]
    }

    /// The arena slice holding one plan variant's steps.
    #[inline]
    pub fn variant_steps(&self, v: &PlanVariant) -> &[PlanStep] {
        &self.plan_arena[v.start as usize..(v.start + v.len) as usize]
    }

    /// The concrete register owning a flat cache slot, or `None` for
    /// slots inside a family's indexed range. This is how the stub
    /// emitters name the cache field behind a [`PlanGuard`] or an
    /// assemble entry.
    #[inline]
    pub fn slot_owner(&self, slot: usize) -> Option<RegId> {
        self.slot_owners.get(slot).copied().flatten()
    }

    /// The private variable owning a memory cell.
    #[inline]
    pub fn mem_owner(&self, cell: usize) -> Option<VarId> {
        self.mem_owners.get(cell).copied()
    }

    /// The register family whose indexed slot range contains `slot`,
    /// with the slot's offset into the range. Complements
    /// [`DeviceIr::slot_owner`], which names only concrete registers —
    /// together they give every flat cache slot a provenance.
    pub fn family_slot_owner(&self, slot: usize) -> Option<(RegId, usize)> {
        for (ri, r) in self.regs.iter().enumerate() {
            if let Some(fs) = &r.family_slots {
                if (fs.base..fs.base + fs.count).contains(&slot) {
                    return Some((RegId(ri as u32), slot - fs.base));
                }
            }
        }
        None
    }

    /// Human-readable provenance of a flat cache slot: the owning
    /// register's name, with the instance index for family ranges.
    /// Diagnostics and manifests use this so a slot number is never the
    /// only handle on a finding.
    pub fn slot_name(&self, slot: usize) -> String {
        if let Some(rid) = self.slot_owner(slot) {
            return self.reg(rid).name.clone();
        }
        if let Some((rid, idx)) = self.family_slot_owner(slot) {
            return format!("{}[{idx}]", self.reg(rid).name);
        }
        format!("slot#{slot}")
    }

    /// Human-readable provenance of a private memory cell: the owning
    /// variable's name.
    pub fn cell_name(&self, cell: usize) -> String {
        match self.mem_owner(cell) {
            Some(vid) => self.var(vid).name.clone(),
            None => format!("cell#{cell}"),
        }
    }

    /// Every access that kept the general interpreter, with its cause.
    /// Fallbacks are loud: a spec whose concrete surface should be
    /// fully plan-backed can assert this list empty, and a capped shape
    /// (guard domain, step budget, recursion depth) names the cap it
    /// hit instead of silently losing its fast path.
    pub fn plan_fallbacks(&self) -> &[PlanFallback] {
        &self.plan_fallbacks
    }

    /// Resolves a register binding's offset for concrete family args.
    pub fn resolve_offset(&self, binding: &PortBinding, args: &[u64]) -> u64 {
        match binding.offset {
            Offset::Const(c) => c,
            Offset::Param(i) => args[i],
        }
    }

    /// The fused superplans declared on this device, in declaration
    /// order (`fuse`'s returned index).
    pub fn superplans(&self) -> &[Superplan] {
        &self.superplans
    }

    /// Looks a superplan up by name.
    pub fn superplan_id(&self, name: &str) -> Option<usize> {
        self.superplans.iter().position(|sp| sp.name == name)
    }
}

/// One driver-declared operation of a fusable hot sequence.
#[derive(Clone, Debug)]
pub enum FuseOp {
    /// A cache-only structure-field store (`set_field`). Only legal in
    /// the leading stage prefix, before any device-touching op.
    SetField {
        /// The stored field.
        var: VarId,
        /// Its value (`Const` or a superplan operand `Arg`).
        value: PlanValue,
    },
    /// A plain variable write (no family arguments).
    Write {
        /// The written variable.
        var: VarId,
        /// The written value (`Const` or `Arg`).
        value: PlanValue,
    },
    /// A plain variable read; its value lands in the superplan's
    /// output vector, in op order.
    Read {
        /// The read variable.
        var: VarId,
    },
    /// A structure flush (`write_struct`).
    WriteStruct {
        /// The flushed structure.
        strct: StructId,
    },
    /// A block read of a `block` variable filling the caller's
    /// block-in buffer.
    ReadBlock {
        /// The block variable.
        var: VarId,
    },
    /// A block write of a `block` variable from the caller's block-out
    /// buffer.
    WriteBlock {
        /// The block variable.
        var: VarId,
    },
}

/// One device transaction of a superplan variant's declared shape: what
/// the fused body puts on the bus, in order. Property tests fold a
/// shape through the harness port map and `hwsim::CostModel` to predict
/// the exact ledger delta and sim-time advance of a fused dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeOp {
    /// Port index.
    pub port: u32,
    /// Access width in bits.
    pub size: u32,
    /// Write (out) rather than read (in).
    pub write: bool,
    /// A vectored block transaction (word count = the caller's buffer
    /// length) rather than a single access.
    pub block: bool,
}

/// A fused hot sequence: the stage prefix, one guard-selected
/// straight-line body per tested-value combination, and the declared
/// bus shape of each body.
///
/// Fusion is pure dispatch batching: a fused body issues the identical
/// device-op stream the unfused op-by-op sequence would, so ledgers and
/// device state are bit-identical by construction — the win is one
/// selector evaluation and one arena walk instead of N.
#[derive(Clone, Debug)]
pub struct Superplan {
    /// Superplan name (the driver's handle).
    pub name: String,
    /// The declared op sequence, for the runtime's unfused reference
    /// path (selection misses fall back through it).
    pub ops: Vec<FuseOp>,
    /// Unconditional stage prefix (the leading `SetField` ops as
    /// cache/cell stores), executed before selection — exactly where
    /// the unfused sequence stores them, and idempotent, so a
    /// selection-miss fallback re-staging through the general path is
    /// observably identical.
    pub stage: PlanVariant,
    /// Selector (concatenated per-op dims) and fused variants.
    pub plan: AccessPlan,
    /// Number of `Read` ops — the required output-vector length.
    pub outputs: usize,
    /// Required operand count (`1 +` the highest `Arg` index used).
    pub args: usize,
    /// Per-variant bus shape, aligned with `plan.variants`.
    pub shape: Vec<Vec<ShapeOp>>,
}

/// Fused variants larger than this abort fusion loudly.
const SUPERPLAN_STEP_BUDGET: usize = 256;

/// Superplans with more guard-selected variants than this abort.
const SUPERPLAN_VARIANT_CAP: usize = 512;

/// Per-op inputs to the fused cross-product enumeration.
struct FuseOpBody {
    /// The op's selector dims (absolute slots/cells, no remapping).
    dims: Vec<SelectorDim>,
    /// Materialized variants in the op's own mixed-radix order:
    /// `(guards, steps)` with `PlanValue::Input` rewritten to the op's
    /// operand and read outputs assembled in place.
    variants: Vec<(Vec<PlanGuard>, Vec<PlanStep>)>,
}

impl DeviceIr {
    /// Fuses a driver-declared hot sequence into a superplan: one
    /// up-front guard evaluation (the per-op selectors concatenated
    /// into one mixed-radix lookup) and one contiguous arena range per
    /// tested-value combination, with block ops lowered to vectored
    /// [`PlanStep::BlockIn`]/[`PlanStep::BlockOut`] steps.
    ///
    /// Returns the superplan's index, or a loud error naming what made
    /// the sequence unfusable. Fusion requires every constituent access
    /// to be plan-backed, argument-free, and hazard-free: an earlier
    /// op's steps must not write a later op's selector sources, because
    /// the fused body selects every variant at entry while the unfused
    /// sequence selects per-op.
    pub fn fuse(&mut self, name: &str, ops: Vec<FuseOp>) -> Result<usize, String> {
        if self.superplan_id(name).is_some() {
            return Err(format!("superplan {name} already declared"));
        }
        let err = |op: usize, what: &str| format!("superplan {name} op {op}: {what}");

        // Phase A: the stage prefix. Leading `SetField` ops become
        // unconditional cache/cell stores, replicating the general
        // interpreter's `store_var_bits` (which both the unfused
        // sequence and a struct write's own staging perform up front).
        let mut stage_steps: Vec<PlanStep> = Vec::new();
        let mut tail_start = 0usize;
        for (i, op) in ops.iter().enumerate() {
            let FuseOp::SetField { var, value } = op else { break };
            tail_start = i + 1;
            self.check_operand(*value).map_err(|e| err(i, &e))?;
            let v = self.var(*var);
            if v.parent.is_none() {
                return Err(err(i, &format!("{} is not a structure field", v.name)));
            }
            if !v.params.is_empty() {
                return Err(err(i, &format!("{} takes family arguments", v.name)));
            }
            if let Some(cell) = v.mem_cell {
                stage_steps.push(PlanStep::SetCell { cell, value: *value });
                continue;
            }
            for seg in &v.segs {
                let Some(slot) = self.reg(seg.reg).slot else {
                    return Err(err(i, &format!("{} lands on a family register", v.name)));
                };
                let compose = match value {
                    PlanValue::Const(c) => StoreCompose {
                        keep_and: !seg.seg.reg_mask(),
                        const_or: seg.seg.insert(*c),
                        segs: Vec::new(),
                    },
                    PlanValue::Arg(a) => StoreCompose {
                        keep_and: !seg.seg.reg_mask(),
                        const_or: 0,
                        segs: vec![WriteSeg { seg: seg.seg, value: PlanValue::Arg(*a) }],
                    },
                    PlanValue::Input => unreachable!("check_operand rejects Input"),
                };
                stage_steps.push(PlanStep::Store(PlanSlot::Fixed(slot), compose));
            }
        }

        // Phase B: the tail ops. Each contributes its selector dims and
        // its materialized variants; `SetField` past the prefix,
        // missing plans, family arguments and input-tested selectors
        // are loud errors.
        let mut bodies: Vec<FuseOpBody> = Vec::new();
        let mut max_depth = 1u32;
        let mut outputs = 0usize;
        let mut block_in_ops = 0usize;
        let mut block_out_ops = 0usize;
        for (i, op) in ops.iter().enumerate().skip(tail_start) {
            let body = match op {
                FuseOp::SetField { .. } => {
                    return Err(err(i, "set_field after a device-touching op (stage prefix only)"));
                }
                FuseOp::Write { var, value } => {
                    self.check_operand(*value).map_err(|e| err(i, &e))?;
                    let v = self.var(*var);
                    if !v.params.is_empty() {
                        return Err(err(i, &format!("{} takes family arguments", v.name)));
                    }
                    let Some(plan) = v.write_plan.clone() else {
                        return Err(err(i, &format!("{} has no write plan", v.name)));
                    };
                    max_depth = max_depth.max(plan.max_depth);
                    self.op_body(&plan, Some(*value), None).map_err(|e| err(i, &e))?
                }
                FuseOp::Read { var } => {
                    let v = self.var(*var);
                    if !v.params.is_empty() {
                        return Err(err(i, &format!("{} takes family arguments", v.name)));
                    }
                    if !v.behavior.volatile && !v.behavior.read_trigger {
                        // An idempotent read may be served from the
                        // cache unfused; a fused body always runs its
                        // steps, so the op streams could diverge.
                        return Err(err(i, &format!("{} is idempotent (cache-served)", v.name)));
                    }
                    let Some(plan) = v.read_plan.clone() else {
                        return Err(err(i, &format!("{} has no read plan", v.name)));
                    };
                    if plan.cell.is_some() {
                        return Err(err(i, &format!("{} is a memory cell", v.name)));
                    }
                    max_depth = max_depth.max(plan.max_depth);
                    let out = outputs as u32;
                    outputs += 1;
                    self.op_body(&plan, None, Some(out)).map_err(|e| err(i, &e))?
                }
                FuseOp::WriteStruct { strct } => {
                    let Some(plan) = self.strct(*strct).write_plan.clone() else {
                        return Err(err(i, "structure has no write plan"));
                    };
                    max_depth = max_depth.max(plan.max_depth);
                    self.op_body(&plan, None, None).map_err(|e| err(i, &e))?
                }
                FuseOp::ReadBlock { var } => {
                    block_in_ops += 1;
                    if block_in_ops > 1 {
                        return Err(err(i, "more than one block read (one block-in buffer)"));
                    }
                    let (port, offset, size) =
                        self.block_binding(*var, /*write=*/ false).map_err(|e| err(i, &e))?;
                    FuseOpBody {
                        dims: Vec::new(),
                        variants: vec![(
                            Vec::new(),
                            vec![PlanStep::BlockIn { port, offset, size }],
                        )],
                    }
                }
                FuseOp::WriteBlock { var } => {
                    block_out_ops += 1;
                    if block_out_ops > 1 {
                        return Err(err(i, "more than one block write (one block-out buffer)"));
                    }
                    let (port, offset, size) =
                        self.block_binding(*var, /*write=*/ true).map_err(|e| err(i, &e))?;
                    FuseOpBody {
                        dims: Vec::new(),
                        variants: vec![(
                            Vec::new(),
                            vec![PlanStep::BlockOut { port, offset, size }],
                        )],
                    }
                }
            };
            bodies.push(body);
        }
        if bodies.is_empty() {
            return Err(format!("superplan {name} has no device-touching ops"));
        }

        // Hazard check: a later op's selector sources must be untouched
        // by every earlier tail op's steps (any variant), or the fused
        // entry-time selection could disagree with unfused per-op
        // selection. Stage stores are exempt — both paths stage first.
        for k in 1..bodies.len() {
            for dim in &bodies[k].dims {
                for earlier in &bodies[..k] {
                    for (_, steps) in &earlier.variants {
                        for step in steps {
                            let clobbers = match step {
                                PlanStep::SetCell { cell, .. } => Some(*cell) == dim.cell,
                                _ => step.slot().is_some_and(|s| {
                                    dim.segs.iter().any(|&(slot, _)| {
                                        slots_may_alias(s, &PlanSlot::Fixed(slot))
                                    })
                                }),
                            };
                            if clobbers {
                                return Err(format!(
                                    "superplan {name}: an earlier op writes a later op's \
                                     selector source (fused selection is entry-time)"
                                ));
                            }
                        }
                    }
                }
            }
        }

        // Cross product: one fused variant per combination of every
        // op's tested values, in concatenated mixed-radix order.
        let dims: Vec<SelectorDim> = bodies.iter().flat_map(|b| b.dims.iter().cloned()).collect();
        let total: usize = dims
            .iter()
            .try_fold(1usize, |acc, d| {
                acc.checked_mul(d.radix).filter(|&t| t <= SUPERPLAN_VARIANT_CAP)
            })
            .ok_or_else(|| {
                format!("superplan {name}: selector space exceeds {SUPERPLAN_VARIANT_CAP} variants")
            })?;

        let mut arena: Vec<PlanStep> = self.plan_arena.to_vec();
        let stage = PlanVariant {
            guards: Vec::new(),
            start: arena.len() as u32,
            len: stage_steps.len() as u32,
        };
        arena.extend(stage_steps);

        let mut variants: Vec<PlanVariant> = Vec::with_capacity(total);
        let mut shape: Vec<Vec<ShapeOp>> = Vec::with_capacity(total);
        for combo in 0..total {
            // Decompose the combo into per-dim values (first dim most
            // significant, matching `select_variant`'s accumulation).
            let mut values = vec![0u64; dims.len()];
            let mut rest = combo;
            for (d, dim) in dims.iter().enumerate().rev() {
                values[d] = (rest % dim.radix) as u64;
                rest /= dim.radix;
            }
            let mut guards: Vec<PlanGuard> = Vec::new();
            let mut steps: Vec<PlanStep> = Vec::new();
            let mut dim_base = 0usize;
            for body in &bodies {
                let local =
                    body.dims.iter().enumerate().fold(0usize, |idx, (d, dim)| {
                        idx * dim.radix + values[dim_base + d] as usize
                    });
                dim_base += body.dims.len();
                let (g, s) = &body.variants[local];
                guards.extend_from_slice(g);
                steps.extend_from_slice(s);
            }
            if steps.len() > SUPERPLAN_STEP_BUDGET {
                return Err(format!(
                    "superplan {name}: {} steps exceed the {SUPERPLAN_STEP_BUDGET}-step budget",
                    steps.len()
                ));
            }
            shape.push(steps.iter().filter_map(shape_of).collect());
            variants.push(PlanVariant {
                guards,
                start: arena.len() as u32,
                len: steps.len() as u32,
            });
            arena.extend(steps);
        }
        self.plan_arena = arena.into();

        let args = superplan_arity(&ops);
        self.superplans.push(Superplan {
            name: name.to_string(),
            ops,
            stage,
            plan: AccessPlan {
                variants,
                selector: dims,
                assemble: Vec::new(),
                cell: None,
                max_depth,
            },
            outputs,
            args,
            shape,
        });
        Ok(self.superplans.len() - 1)
    }

    /// Rejects `Input` operands: a superplan has no single "input", its
    /// operands are the `Arg` vector.
    fn check_operand(&self, value: PlanValue) -> Result<(), String> {
        match value {
            PlanValue::Input => Err("operand must be Const or Arg".into()),
            PlanValue::Const(_) | PlanValue::Arg(_) => Ok(()),
        }
    }

    /// Materializes one constituent plan for fusion: per-variant steps
    /// with `Input` rewritten to the op's operand, read outputs
    /// assembled in place, and everything argument-free.
    fn op_body(
        &self,
        plan: &AccessPlan,
        value: Option<PlanValue>,
        out: Option<u32>,
    ) -> Result<FuseOpBody, String> {
        // Classify the dims. A dim testing the written value itself
        // (write-trigger / neutral-value plans) is resolved *statically*
        // when the op's operand is a compile-time constant — the fused
        // body pins that op's variant at fuse time, exactly the variant
        // `select_variant` would pick at run time for that input.
        // A non-constant operand stays a loud error: entry-time
        // selection has no per-op input to test.
        let mut fixed: Vec<Option<u64>> = Vec::with_capacity(plan.selector.len());
        for dim in &plan.selector {
            if dim.input_mask == 0 {
                fixed.push(None);
                continue;
            }
            // Sound only when the input bits shadow every cache-sourced
            // bit: `select_variant` clears `input_mask` out of the
            // assembled value before OR-ing the input segments in, so a
            // cell source or any cache bit outside the mask would make
            // selection depend on device state too.
            let cache_bits = dim.segs.iter().fold(0u64, |acc, (_, seg)| {
                let w = seg.width();
                let m = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                acc | (m << seg.var_lo)
            });
            if dim.cell.is_some() || cache_bits & !dim.input_mask != 0 {
                return Err("selector mixes the written value with device state".into());
            }
            let Some(PlanValue::Const(c)) = value else {
                return Err("selector tests the written value itself".into());
            };
            let v = dim.input_segs.iter().fold(0u64, |acc, seg| acc | seg.extract(c));
            if v >= dim.radix as u64 {
                return Err("constant operand falls outside the tested domain".into());
            }
            fixed.push(Some(v));
        }
        let dims: Vec<SelectorDim> = plan
            .selector
            .iter()
            .zip(&fixed)
            .filter(|(_, f)| f.is_none())
            .map(|(d, _)| d.clone())
            .collect();
        let assemble: Option<Vec<(usize, FieldSeg)>> = match out {
            None => None,
            Some(_) => Some(
                plan.assemble
                    .iter()
                    .map(|(slot, seg)| match slot {
                        PlanSlot::Fixed(s) => Ok((*s, *seg)),
                        PlanSlot::Indexed { .. } => Err("assembles from a family slot".to_string()),
                    })
                    .collect::<Result<_, _>>()?,
            ),
        };
        // Enumerate the dynamic combos; splice the statically-resolved
        // dim values back in to index the plan's full variant table.
        let total: usize = dims.iter().map(|d| d.radix).product();
        let mut variants = Vec::with_capacity(total);
        for combo in 0..total {
            let mut dynv = vec![0u64; dims.len()];
            let mut rest = combo;
            for (d, dim) in dims.iter().enumerate().rev() {
                dynv[d] = (rest % dim.radix) as u64;
                rest /= dim.radix;
            }
            let mut idx = 0usize;
            let mut dd = 0usize;
            for (dim, f) in plan.selector.iter().zip(&fixed) {
                let v = match f {
                    Some(v) => *v,
                    None => {
                        dd += 1;
                        dynv[dd - 1]
                    }
                };
                idx = idx * dim.radix + v as usize;
            }
            let v = &plan.variants[idx];
            let mut steps = Vec::with_capacity(v.len as usize + 1);
            for step in self.variant_steps(v) {
                steps.push(materialize_step(step, value)?);
            }
            if let (Some(out), Some(assemble)) = (out, &assemble) {
                steps.push(PlanStep::Assemble { out, segs: assemble.clone() });
            }
            // Input-sourced guards are exactly the statically-resolved
            // ones: they hold for the pinned constant by construction,
            // and the fused selector evaluates with no input.
            let guards: Vec<PlanGuard> = v
                .guards
                .iter()
                .filter(|g| !matches!(g.source, GuardSource::Input))
                .copied()
                .collect();
            variants.push((guards, steps));
        }
        Ok(FuseOpBody { dims, variants })
    }

    /// Resolves a `block` variable's port binding for fusion, with the
    /// exact eligibility rules of the runtime's block path — plus
    /// action-free registers, since a fused body interprets no actions.
    fn block_binding(&self, vid: VarId, write: bool) -> Result<(u32, u64, u32), String> {
        let v = self.var(vid);
        if !v.behavior.block || v.segs.len() != 1 {
            return Err(format!("{} is not a block variable", v.name));
        }
        let seg = &v.segs[0];
        let reg = self.reg(seg.reg);
        if seg.seg.width() != reg.size {
            return Err(format!("{} does not cover its register", v.name));
        }
        if !reg.pre.is_empty() || !reg.post.is_empty() || !reg.set.is_empty() {
            return Err(format!("{}'s register has actions", reg.name));
        }
        let binding = if write { &reg.write } else { &reg.read };
        let Some(binding) = binding else {
            return Err(format!(
                "{} is not {} ",
                v.name,
                if write { "writable" } else { "readable" }
            ));
        };
        let Offset::Const(offset) = binding.offset else {
            return Err(format!("{}'s port offset is parametric", reg.name));
        };
        Ok((binding.port.0, offset, reg.size))
    }
}

/// Validates and rewrites one constituent step for a fused body: fixed
/// slots, constant offsets, and `Input` values substituted with the
/// op's operand.
fn materialize_step(step: &PlanStep, value: Option<PlanValue>) -> Result<PlanStep, String> {
    let fixed = |slot: &PlanSlot| -> Result<PlanSlot, String> {
        match slot {
            PlanSlot::Fixed(s) => Ok(PlanSlot::Fixed(*s)),
            PlanSlot::Indexed { base, dims } if dims.is_empty() => Ok(PlanSlot::Fixed(*base)),
            PlanSlot::Indexed { .. } => Err("step addresses a family slot".into()),
        }
    };
    let subst = |v: PlanValue| -> Result<PlanValue, String> {
        match v {
            PlanValue::Input => {
                value.ok_or_else(|| "step reads an input this op does not have".to_string())
            }
            other => Ok(other),
        }
    };
    let access = |a: &AccessStep| -> Result<AccessStep, String> {
        let PlanOffset::Const(off) = a.offset else {
            return Err("step offset is parametric".into());
        };
        Ok(AccessStep {
            reg: a.reg,
            slot: fixed(&a.slot)?,
            port: a.port,
            offset: PlanOffset::Const(off),
            size: a.size,
        })
    };
    Ok(match step {
        PlanStep::Read(a) => PlanStep::Read(access(a)?),
        PlanStep::Write(a, c) => PlanStep::Write(
            access(a)?,
            WriteCompose {
                keep_and: c.keep_and,
                const_or: c.const_or,
                segs: c
                    .segs
                    .iter()
                    .map(|ws| Ok(WriteSeg { seg: ws.seg, value: subst(ws.value)? }))
                    .collect::<Result<_, String>>()?,
                out_and: c.out_and,
                out_or: c.out_or,
            },
        ),
        PlanStep::Store(slot, c) => PlanStep::Store(
            fixed(slot)?,
            StoreCompose {
                keep_and: c.keep_and,
                const_or: c.const_or,
                segs: c
                    .segs
                    .iter()
                    .map(|ws| Ok(WriteSeg { seg: ws.seg, value: subst(ws.value)? }))
                    .collect::<Result<_, String>>()?,
            },
        ),
        PlanStep::SetCell { cell, value: v } => {
            PlanStep::SetCell { cell: *cell, value: subst(*v)? }
        }
        PlanStep::BlockIn { .. } | PlanStep::BlockOut { .. } | PlanStep::Assemble { .. } => {
            return Err("nested superplan step".into());
        }
    })
}

/// The declared-shape entry of one fused step, if it touches the bus.
fn shape_of(step: &PlanStep) -> Option<ShapeOp> {
    match step {
        PlanStep::Read(a) => {
            Some(ShapeOp { port: a.port, size: a.size, write: false, block: false })
        }
        PlanStep::Write(a, _) => {
            Some(ShapeOp { port: a.port, size: a.size, write: true, block: false })
        }
        PlanStep::BlockIn { port, size, .. } => {
            Some(ShapeOp { port: *port, size: *size, write: false, block: true })
        }
        PlanStep::BlockOut { port, size, .. } => {
            Some(ShapeOp { port: *port, size: *size, write: true, block: true })
        }
        PlanStep::Store(..) | PlanStep::SetCell { .. } | PlanStep::Assemble { .. } => None,
    }
}

/// `1 +` the highest `Arg` index a superplan's ops reference.
fn superplan_arity(ops: &[FuseOp]) -> usize {
    ops.iter()
        .filter_map(|op| match op {
            FuseOp::SetField { value, .. } | FuseOp::Write { value, .. } => match value {
                PlanValue::Arg(i) => Some(i + 1),
                _ => None,
            },
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ir_for(src: &str) -> DeviceIr {
        let model = devil_sema::check_source(src, &[]).expect("spec must check");
        lower(&model)
    }

    /// The arena steps of a plan's only, unguarded variant.
    fn steps<'a>(ir: &'a DeviceIr, plan: &AccessPlan) -> &'a [PlanStep] {
        assert_eq!(plan.variants.len(), 1, "expected a straight-line plan");
        assert!(plan.variants[0].guards.is_empty(), "expected an unguarded plan");
        ir.variant_steps(&plan.variants[0])
    }

    const BUSMOUSE: &str = r#"
device logitech_busmouse (base : bit[8] port @ {0..3}) {
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);
  register cr = write base @ 3, mask '1001000*' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };
  register interrupt_reg = write base @ 2, mask '000*0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };
  register index_reg = write base @ 2, mask '1**00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);
  register x_low  = read base @ 0, pre {index = 0}, mask '....****' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '....****' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '....****' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '***.****' : bit[8];
  structure mouse_state = {
    variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
    variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
    variable buttons = y_high[7..5], volatile : int(3);
  };
}
"#;

    #[test]
    fn busmouse_segments() {
        let ir = ir_for(BUSMOUSE);
        let dx = ir.var(ir.var_id("dx").unwrap());
        assert_eq!(dx.width, 8);
        assert_eq!(dx.segs.len(), 2);
        // x_high[3..0] is the high nibble of dx.
        let hi = &dx.segs[0];
        assert_eq!(ir.reg(hi.reg).name, "x_high");
        assert_eq!((hi.seg.reg_hi, hi.seg.reg_lo, hi.seg.var_lo), (3, 0, 4));
        let lo = &dx.segs[1];
        assert_eq!(ir.reg(lo.reg).name, "x_low");
        assert_eq!((lo.seg.reg_hi, lo.seg.reg_lo, lo.seg.var_lo), (3, 0, 0));
    }

    #[test]
    fn busmouse_shared_register_fields() {
        let ir = ir_for(BUSMOUSE);
        // y_high carries dy's high nibble and buttons.
        let y_high = ir.reg(ir.reg_id("y_high").unwrap());
        assert_eq!(y_high.fields.len(), 2);
        assert!(y_high.volatile);
        let buttons_id = ir.var_id("buttons").unwrap();
        let btn_seg = y_high.fields.iter().find(|f| f.var == buttons_id).unwrap();
        assert_eq!((btn_seg.reg_hi, btn_seg.reg_lo, btn_seg.var_lo), (7, 5, 0));
    }

    #[test]
    fn busmouse_structure_read_order_dedups_registers() {
        let ir = ir_for(BUSMOUSE);
        let st = ir.strct(ir.struct_id("mouse_state").unwrap());
        // x_high, x_low, y_high, y_low — four distinct registers even
        // though dy and buttons share y_high.
        assert_eq!(st.read_order.len(), 4);
        let names: Vec<&str> = st
            .read_order
            .iter()
            .map(|s| match s {
                SerStep::Reg(r) => ir.reg(*r).name.as_str(),
                _ => panic!("unexpected conditional"),
            })
            .collect();
        assert_eq!(names, ["x_high", "x_low", "y_high", "y_low"]);
    }

    #[test]
    fn forced_masks_lowered() {
        let ir = ir_for(BUSMOUSE);
        let cr = ir.reg(ir.reg_id("cr").unwrap());
        assert_eq!(cr.or_mask, 0b1001_0000);
        assert_eq!(cr.and_mask, 0b1001_0001);
        let idx = ir.reg(ir.reg_id("index_reg").unwrap());
        assert_eq!(idx.or_mask, 0b1000_0000);
        assert_eq!(idx.and_mask, 0b1110_0000);
    }

    #[test]
    fn field_seg_extract_insert_inverse() {
        let seg = FieldSeg { var: VarId(0), reg_hi: 6, reg_lo: 5, var_lo: 0 };
        assert_eq!(seg.width(), 2);
        assert_eq!(seg.reg_mask(), 0b0110_0000);
        let reg_raw = 0b0100_0000u64;
        assert_eq!(seg.extract(reg_raw), 0b10);
        assert_eq!(seg.insert(0b10), 0b0100_0000);
        // extract ∘ insert = identity on in-range values.
        for v in 0..4u64 {
            assert_eq!(seg.extract(seg.insert(v)), v);
        }
    }

    #[test]
    fn serialized_variable_order_respected() {
        let ir = ir_for(
            r#"device d (data : bit[8] port @ {0..0}, ctl : bit[8] port @ {1..1}) {
                 register ff = write ctl @ 1, mask '0000000*' : bit[8];
                 private variable flip_flop = ff[0] : bool;
                 register cnt_low = data @ 0, pre {flip_flop = *} : bit[8];
                 register cnt_high = data @ 0 : bit[8];
                 variable x = cnt_high # cnt_low : int(16) serialized as {cnt_low; cnt_high;};
               }"#,
        );
        let x = ir.var(ir.var_id("x").unwrap());
        let names: Vec<&str> = x
            .read_order
            .iter()
            .map(|s| match s {
                SerStep::Reg(r) => ir.reg(*r).name.as_str(),
                _ => panic!(),
            })
            .collect();
        // Default order would be cnt_high (MSB) first; the plan says
        // cnt_low first.
        assert_eq!(names, ["cnt_low", "cnt_high"]);
        // Segment map still places cnt_high at the top byte.
        assert_eq!(x.segs[0].seg.var_lo, 8);
        assert_eq!(x.segs[1].seg.var_lo, 0);
    }

    #[test]
    fn memory_variables_get_cells() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable xm : bool;
                 register control = base @ 0, set {xm = false} : bit[8];
                 variable IA = control : int{0..31};
               }"#,
        );
        assert_eq!(ir.mem_cells, 1);
        let xm = ir.var(ir.var_id("xm").unwrap());
        assert_eq!(xm.mem_cell, Some(0));
        assert!(xm.readable && xm.writable);
        let ia = ir.var(ir.var_id("IA").unwrap());
        assert_eq!(ia.mem_cell, None);
    }

    #[test]
    fn directions_lowered() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register ro = read base @ 0 : bit[8];
                 register wo = write base @ 1 : bit[8];
                 variable vr = ro, volatile : int(8);
                 variable vw = wo : int(8);
               }"#,
        );
        let vr = ir.var(ir.var_id("vr").unwrap());
        assert!(vr.readable && !vr.writable);
        let vw = ir.var(ir.var_id("vw").unwrap());
        assert!(!vw.readable && vw.writable);
    }

    #[test]
    fn multi_range_atom_orders_msb_first() {
        // XA = r[2,7..4]: bit 2 is the variable's MSB (bit 4), then
        // bits 7..4 follow.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0, mask '****.*.*' : bit[8];
                 variable XA = r[2,7..4] : int(5);
                 variable other = r[0] : bool;
               }"#,
        );
        let xa = ir.var(ir.var_id("XA").unwrap());
        assert_eq!(xa.segs.len(), 2);
        assert_eq!(
            (xa.segs[0].seg.reg_hi, xa.segs[0].seg.reg_lo, xa.segs[0].seg.var_lo),
            (2, 2, 4)
        );
        assert_eq!(
            (xa.segs[1].seg.reg_hi, xa.segs[1].seg.reg_lo, xa.segs[1].seg.var_lo),
            (7, 4, 0)
        );
    }

    #[test]
    fn plans_compiled_for_simple_variables() {
        let ir = ir_for(BUSMOUSE);
        // `config` lives alone on `cr`, which has no actions.
        let config = ir.var(ir.var_id("config").unwrap());
        assert!(config.read_plan.is_none(), "cr is write-only");
        let plan = config.write_plan.as_ref().expect("cr write plan");
        let wsteps = steps(&ir, plan);
        assert_eq!(wsteps.len(), 1);
        let PlanStep::Write(step, compose) = &wsteps[0] else { panic!("write step") };
        assert!(matches!(step.offset, PlanOffset::Const(3)));
        assert_eq!(compose.out_or, 0b1001_0000);
        assert_eq!(compose.out_and, 0b1001_0001);
        assert_eq!(compose.segs.len(), 1);
        assert_eq!(compose.segs[0].value, PlanValue::Input);
        // `signature` reads a plain register: read plan with one step.
        let sig = ir.var(ir.var_id("signature").unwrap());
        let rp = sig.read_plan.as_ref().expect("sig_reg read plan");
        let rsteps = steps(&ir, rp);
        assert_eq!(rsteps.len(), 1);
        assert!(
            matches!(&rsteps[0], PlanStep::Read(a) if matches!(a.offset, PlanOffset::Const(1)))
        );
        assert_eq!(rp.assemble.len(), 1);
    }

    #[test]
    fn plans_fold_index_register_pre_actions() {
        // dx is backed by registers with `index = N` pre-actions; the
        // symbolic executor folds those into constant index writes.
        let ir = ir_for(BUSMOUSE);
        let dx = ir.var(ir.var_id("dx").unwrap());
        let rp = dx.read_plan.as_ref().expect("dx read plan folds pre-actions");
        let rsteps = steps(&ir, rp);
        // write index=1, read x_high, write index=0, read x_low.
        assert_eq!(rsteps.len(), 4);
        let idx_reg = ir.reg_id("index_reg").unwrap();
        let PlanStep::Write(a0, c0) = &rsteps[0] else { panic!("index write first") };
        assert_eq!(a0.reg, idx_reg);
        // index=1 folded: bits 6..5 get 0b01.
        assert_eq!(c0.const_or, 0b0010_0000);
        assert!(c0.segs.is_empty(), "constant fully folded");
        assert!(matches!(&rsteps[1], PlanStep::Read(a) if ir.reg(a.reg).name == "x_high"));
        let PlanStep::Write(_, c2) = &rsteps[2] else { panic!() };
        assert_eq!(c2.const_or, 0, "index=0 folds to zero bits");
        assert!(matches!(&rsteps[3], PlanStep::Read(a) if ir.reg(a.reg).name == "x_low"));
        // dx is read-only (its registers are read-only): no write plan.
        assert!(dx.write_plan.is_none());
    }

    #[test]
    fn struct_plans_flatten_the_figure_3_loop() {
        let ir = ir_for(BUSMOUSE);
        let st = ir.strct(ir.struct_id("mouse_state").unwrap());
        let plan = st.read_plan.as_ref().expect("mouse_state read plan");
        let rsteps = steps(&ir, plan);
        // 4 index writes + 4 data reads, interleaved.
        assert_eq!(rsteps.len(), 8);
        let kinds: Vec<bool> = rsteps.iter().map(|s| matches!(s, PlanStep::Write(..))).collect();
        assert_eq!(kinds, [true, false, true, false, true, false, true, false]);
        // Registers are read-only: no write plan for the structure.
        assert!(st.write_plan.is_none());
        // Fields assemble from fixed slots without name resolution.
        let dx = ir.var(ir.var_id("dx").unwrap());
        assert_eq!(dx.slot_assemble.as_ref().map(Vec::len), Some(2));
    }

    #[test]
    fn plans_fold_trigger_neutrals() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register cmd = base @ 0 : bit[8];
                 variable st = cmd[1..0], write trigger except NEUTRAL
                   : { NEUTRAL <=> '11', START <=> '01', STOP <=> '10', NOP <=> '00' };
                 variable page = cmd[7..2] : int(6);
               }"#,
        );
        let page = ir.var(ir.var_id("page").unwrap());
        let plan = page.write_plan.as_ref().expect("page write plan");
        let PlanStep::Write(_, c) = &steps(&ir, plan)[0] else { panic!() };
        // st's bits are cleared from the cached value and replaced by
        // the neutral pattern '11'.
        assert_eq!(c.keep_and & 0b11, 0, "st bits cleared");
        assert_eq!(c.const_or, 0b11, "neutral folded in");
        // st's own plan keeps page's cached bits.
        let st = ir.var(ir.var_id("st").unwrap());
        let sp = st.write_plan.as_ref().expect("st write plan");
        let PlanStep::Write(_, sc) = &steps(&ir, sp)[0] else { panic!() };
        assert_eq!(sc.keep_and & 0b1111_1100, 0b1111_1100);
        assert_eq!(sc.const_or, 0);
    }

    #[test]
    fn family_registers_get_indexed_slot_ranges() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..4}) {
                 register plain = base @ 4 : bit[8];
                 variable v = plain : int(8);
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable f(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
        // One slot for `plain` plus four for the family instances.
        assert_eq!(ir.cache_slots, 5);
        assert!(ir.reg(ir.reg_id("plain").unwrap()).slot.is_some());
        let r = ir.reg(ir.reg_id("r").unwrap());
        assert!(r.slot.is_none());
        let fam = r.family_slots.as_ref().expect("indexed family slots");
        assert_eq!(fam.count, 4);
        assert_eq!(fam.slot_of(&[0]), Some(fam.base));
        assert_eq!(fam.slot_of(&[3]), Some(fam.base + 3));
        assert_eq!(fam.slot_of(&[4]), None, "outside the domain");
    }

    #[test]
    fn sparse_family_domains_index_densely() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..17, 25}) {
                 register x(i : int{0..17, 25}) = base @ i : bit[8];
                 variable xv(i : int{0..17, 25}) = x(i), volatile : int(8);
               }"#,
        );
        let x = ir.reg(ir.reg_id("x").unwrap());
        let fam = x.family_slots.as_ref().unwrap();
        assert_eq!(fam.count, 19);
        assert_eq!(fam.slot_of(&[17]), Some(fam.base + 17));
        assert_eq!(fam.slot_of(&[25]), Some(fam.base + 18), "sparse value packs densely");
        assert_eq!(fam.slot_of(&[20]), None);
    }

    #[test]
    fn family_variables_compile_parameterized_plans() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..3}) {
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable v(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
        let v = ir.var(ir.var_id("v").unwrap());
        let rp = v.read_plan.as_ref().expect("family read plan");
        let rsteps = steps(&ir, rp);
        assert_eq!(rsteps.len(), 1);
        let PlanStep::Read(a) = &rsteps[0] else { panic!() };
        assert!(matches!(a.offset, PlanOffset::Arg(0)));
        let PlanSlot::Indexed { dims, .. } = &a.slot else { panic!("indexed slot") };
        assert_eq!(dims.len(), 1);
        assert_eq!(rp.assemble.len(), 1);
        let wp = v.write_plan.as_ref().expect("family write plan");
        assert!(matches!(
            &steps(&ir, wp)[0],
            PlanStep::Write(a, _) if matches!(a.offset, PlanOffset::Arg(0))
        ));
    }

    #[test]
    fn indexed_pre_actions_fold_into_plans() {
        // CS4236B-style: the indexed-register automaton (control write
        // with the parameter value, set-action on a memory cell, data
        // read) flattens to three straight-line steps.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 private variable xm : bool;
                 register control = base @ 0, mask '000*****', set {xm = false} : bit[8];
                 variable IA = control[4..0] : int{0..31};
                 register I(i : int{0..31}) = base @ 1, pre {IA = i} : bit[8];
                 variable ID(i : int{0..31}) = I(i), volatile : int(8);
               }"#,
        );
        let id = ir.var(ir.var_id("ID").unwrap());
        let rp = id.read_plan.as_ref().expect("ID read plan");
        let rsteps = steps(&ir, rp);
        assert_eq!(rsteps.len(), 3);
        let PlanStep::Write(a, c) = &rsteps[0] else { panic!("control write first") };
        assert_eq!(ir.reg(a.reg).name, "control");
        assert_eq!(c.segs.len(), 1);
        assert_eq!(c.segs[0].value, PlanValue::Arg(0), "IA gets the family argument");
        assert!(matches!(&rsteps[1], PlanStep::SetCell { cell: 0, value: PlanValue::Const(0) }));
        assert!(matches!(&rsteps[2], PlanStep::Read(a) if ir.reg(a.reg).name == "I"));
    }

    #[test]
    fn conditional_struct_writes_guard_split_into_variants() {
        // The 8259A shape: `if (sngl == CASCADED) icw3` splits the
        // write into one straight-line variant per tested cache value,
        // selected by a slot guard on icw1's bit 0.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register icw1 = write base @ 0 : bit[8];
                 register icw3 = write base @ 1 : bit[8];
                 structure init = {
                   variable sngl = icw1[0] : { SINGLE => '1', CASCADED => '0' };
                   variable rest = icw1[7..1] : int(7);
                   variable v3 = icw3 : int(8);
                 } serialized as { icw1; if (sngl == CASCADED) icw3; };
               }"#,
        );
        let st = ir.strct(ir.struct_id("init").unwrap());
        // Registers are write-only, so the read direction has no plan
        // in any variant.
        assert!(st.read_plan.is_none());
        let wp = st.write_plan.as_ref().expect("conditional write must guard-split");
        assert_eq!(wp.variants.len(), 2, "one variant per sngl cache value");
        let icw1_slot = ir.reg(ir.reg_id("icw1").unwrap()).slot.unwrap();
        // sngl == 0 (CASCADED): guard expects bit 0 clear, icw3 written.
        let cascaded = &wp.variants[0];
        assert_eq!(
            cascaded.guards,
            vec![PlanGuard { source: GuardSource::Slot(icw1_slot), mask: 1, expected: 0 }]
        );
        assert_eq!(ir.variant_steps(cascaded).len(), 2, "icw1 + icw3");
        // sngl == 1 (SINGLE): icw3 skipped.
        let single = &wp.variants[1];
        assert_eq!(
            single.guards,
            vec![PlanGuard { source: GuardSource::Slot(icw1_slot), mask: 1, expected: 1 }]
        );
        assert_eq!(ir.variant_steps(single).len(), 1, "icw1 only");
        assert!(matches!(
            &ir.variant_steps(single)[0],
            PlanStep::Write(a, _) if a.reg == ir.reg_id("icw1").unwrap()
        ));
    }

    #[test]
    fn two_conditionals_enumerate_the_cross_product() {
        // The full 8259A shape: sngl and ic4 (1 bit each) give 2×2
        // variants with 5/4/4/3 steps.
        let ir = ir_for(include_str!("../../../specs/pic8259.dil"));
        let st = ir.strct(ir.struct_id("init").unwrap());
        let wp = st.write_plan.as_ref().expect("pic8259 init must guard-split");
        assert_eq!(wp.variants.len(), 4);
        let lens: Vec<u32> = wp.variants.iter().map(|v| v.len).collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [3, 4, 4, 5], "icw3/icw4 skipped per combination: {lens:?}");
        // Both guards test icw1's flat slot.
        let icw1_slot = ir.reg(ir.reg_id("icw1").unwrap()).slot.unwrap();
        for v in &wp.variants {
            assert_eq!(v.guards.len(), 2);
            assert!(v.guards.iter().all(|g| g.source == GuardSource::Slot(icw1_slot)));
        }
        // The fully-populated variant (CASCADED + IC4) writes all five
        // registers in spec order.
        let full = wp.variants.iter().find(|v| v.len == 5).unwrap();
        let names: Vec<&str> = ir
            .variant_steps(full)
            .iter()
            .map(|s| match s {
                PlanStep::Write(a, _) => ir.reg(a.reg).name.as_str(),
                _ => panic!("flush is all writes"),
            })
            .collect();
        assert_eq!(names, ["icw1", "icw2", "icw3", "icw4", "ocw1"]);
        // Indexed selection: every cache state picks the variant whose
        // guards hold — no scan over the variant table.
        assert_eq!(wp.selector.len(), 2);
        let mut slots = vec![0u64; ir.cache_slots];
        let mut valid = vec![false; ir.cache_slots];
        let mem = vec![0u64; ir.mem_cells];
        for raw in 0u64..4 {
            slots[icw1_slot] = raw;
            valid[icw1_slot] = true;
            let v = wp.select_variant(&slots, &valid, &mem, 0).expect("selection is total");
            assert!(v.guards.iter().all(|g| g.holds(&slots, &valid, &mem, 0)), "raw {raw:#b}");
        }
        // Uncached slots read as 0, exactly the general path's default:
        // sngl=CASCADED (icw3 written), ic4=NO (icw4 skipped).
        valid[icw1_slot] = false;
        assert_eq!(wp.select_variant(&slots, &valid, &mem, 0).unwrap().len, 4);
    }

    #[test]
    fn nested_conditional_orders_fold_assigned_constants() {
        // `data`'s pre-action writes the struct, whose order is
        // conditional — but the action assigns `sel` a constant, so the
        // condition folds statically: the nested flush inlines into a
        // single straight-line variant (formerly a general-interpreter
        // fallback, pinned by devil-fuzz's fallback tests).
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..2}) {
                 register a = write base @ 0 : bit[8];
                 register c = write base @ 1 : bit[8];
                 structure s = {
                   variable sel = a[0] : bool;
                   variable rest = a[7..1] : int(7);
                   variable v = c : int(8);
                 } serialized as { a; if (sel == true) c; };
                 register data = read base @ 2, pre {s = {sel => true; rest => 1; v => 2}} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        let payload = ir.var(ir.var_id("payload").unwrap());
        let rp = payload.read_plan.as_ref().expect("assigned-constant condition must fold");
        let rsteps = steps(&ir, rp);
        // sel=1 takes the `c` branch: flush a, flush c, read data.
        assert_eq!(rsteps.len(), 3);
        let PlanStep::Write(a0, c0) = &rsteps[0] else { panic!("a flush first") };
        assert_eq!(ir.reg(a0.reg).name, "a");
        assert_eq!(c0.const_or, 0b11, "sel=1 and rest=1 folded");
        assert!(matches!(&rsteps[1], PlanStep::Write(a, _) if ir.reg(a.reg).name == "c"));
        assert!(matches!(&rsteps[2], PlanStep::Read(a) if ir.reg(a.reg).name == "data"));
        // The struct's own top-level write still guard-splits.
        let st = ir.strct(ir.struct_id("s").unwrap());
        assert!(st.write_plan.is_some());
        assert!(ir.plan_fallbacks().is_empty(), "{:?}", ir.plan_fallbacks());
    }

    #[test]
    fn nested_conditionals_on_unassigned_fields_join_the_outer_enumeration() {
        // The pre-action assigns `rest` and `v` but not `sel`: the
        // nested condition still tests entry state, so `sel` becomes an
        // outer selector dimension and the read guard-splits.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..2}) {
                 register a = write base @ 0 : bit[8];
                 register c = write base @ 1 : bit[8];
                 structure s = {
                   variable sel = a[0] : bool;
                   variable rest = a[7..1] : int(7);
                   variable v = c : int(8);
                 } serialized as { a; if (sel == true) c; };
                 register data = read base @ 2, pre {s = {rest => 1; v => 2}} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        let payload = ir.var(ir.var_id("payload").unwrap());
        let rp = payload.read_plan.as_ref().expect("entry-tested nested condition must inline");
        assert_eq!(rp.variants.len(), 2, "one variant per cached sel value");
        assert_eq!(rp.selector.len(), 1);
        let a_slot = ir.reg(ir.reg_id("a").unwrap()).slot.unwrap();
        assert_eq!(
            rp.selector[0].segs,
            vec![(a_slot, ir.var(ir.var_id("sel").unwrap()).segs[0].seg)]
        );
        // sel == 0: `c` is skipped by the flush, but the assigned `v`
        // still stores cache-only; then a flushed, data read.
        let v0 = ir.variant_steps(&rp.variants[0]);
        assert_eq!(v0.len(), 3);
        assert!(matches!(&v0[0], PlanStep::Store(..)), "{v0:?}");
        assert!(matches!(&v0[1], PlanStep::Write(a, _) if ir.reg(a.reg).name == "a"));
        assert!(matches!(&v0[2], PlanStep::Read(..)));
        // sel == 1: a, c, data — all device-visible.
        let v1 = ir.variant_steps(&rp.variants[1]);
        assert_eq!(v1.len(), 3);
        assert!(v1.iter().all(|s| !matches!(s, PlanStep::Store(..))));
        assert_eq!(
            rp.variants[1].guards,
            vec![PlanGuard { source: GuardSource::Slot(a_slot), mask: 1, expected: 1 }]
        );
    }

    #[test]
    fn self_written_tested_variables_guard_on_the_input() {
        // The write order tests the variable being written: the general
        // path stores the bits before evaluating, so variant selection
        // must read the caller's value — an input-sourced guard. The
        // skipped-flush variant still stores the bits cache-only.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = write base @ 0 : bit[8];
                 variable rest = a[7..1] : int(7);
                 variable w = a[0] : bool serialized as { if (w == true) a; };
               }"#,
        );
        let w = ir.var(ir.var_id("w").unwrap());
        let wp = w.write_plan.as_ref().expect("self-tested write must guard on the input");
        assert_eq!(wp.variants.len(), 2);
        assert_eq!(wp.selector.len(), 1);
        assert_eq!(wp.selector[0].input_mask, 1, "bit 0 comes from the input");
        assert_eq!(
            wp.variants[1].guards,
            vec![PlanGuard { source: GuardSource::Input, mask: 1, expected: 1 }]
        );
        // w == 0: no flush, but the bit still lands in the cache.
        let v0 = ir.variant_steps(&wp.variants[0]);
        assert_eq!(v0.len(), 1);
        assert!(matches!(&v0[0], PlanStep::Store(PlanSlot::Fixed(_), c) if c.keep_and == !1));
        // w == 1: the composed device write (store fused in).
        let v1 = ir.variant_steps(&wp.variants[1]);
        assert_eq!(v1.len(), 1);
        assert!(matches!(&v1[0], PlanStep::Write(..)));
        assert!(ir.plan_fallbacks().is_empty(), "{:?}", ir.plan_fallbacks());
    }

    #[test]
    fn nested_conditionals_testing_the_written_variable_guard_on_the_input() {
        // Register `a`'s set action flushes the struct, whose order
        // tests `w` — the very variable being written. The nested
        // condition is evaluated after the general path stored w's
        // bits, so the discovered dimension must source them from the
        // input, not the entry cache.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register a = write base @ 0, set {s = {v => 5}} : bit[8];
                 register c = write base @ 1 : bit[8];
                 structure s = {
                   variable w = a[0] : bool;
                   variable rest = a[7..1] : int(7);
                   variable v = c : int(8);
                 } serialized as { if (w == true) c; };
               }"#,
        );
        let w = ir.var(ir.var_id("w").unwrap());
        let wp = w.write_plan.as_ref().expect("input-stored nested condition must inline");
        assert_eq!(wp.variants.len(), 2);
        assert_eq!(wp.selector[0].input_mask, 1, "w's bit comes from the input");
        assert_eq!(
            wp.variants[1].guards,
            vec![PlanGuard { source: GuardSource::Input, mask: 1, expected: 1 }]
        );
        // w == 0: w's own flush of a, then the action's struct flush
        // skips c — the assigned v stores cache-only.
        let v0 = ir.variant_steps(&wp.variants[0]);
        assert_eq!(v0.len(), 2, "{v0:?}");
        assert!(matches!(&v0[0], PlanStep::Write(a, _) if ir.reg(a.reg).name == "a"));
        assert!(matches!(&v0[1], PlanStep::Store(..)), "{v0:?}");
        // w == 1: a, then the struct flush writes c (v=5 folded).
        let v1 = ir.variant_steps(&wp.variants[1]);
        assert_eq!(v1.len(), 2, "{v1:?}");
        let PlanStep::Write(a2, c2) = &v1[1] else { panic!("{v1:?}") };
        assert_eq!(ir.reg(a2.reg).name, "c");
        assert_eq!(c2.const_or, 5);
        assert!(ir.plan_fallbacks().is_empty(), "{:?}", ir.plan_fallbacks());
        // Equivalence for this shape is covered end to end by the
        // differential fuzzer's synthetic list; here, sanity-check the
        // entry dim discovered for `rest`'s write too (w untouched →
        // slot-sourced guard).
        let rest = ir.var(ir.var_id("rest").unwrap());
        let rp = rest.write_plan.as_ref().expect("entry-tested nested condition must inline");
        assert_eq!(rp.variants.len(), 2);
        assert_eq!(rp.selector[0].input_mask, 0, "w read from the entry cache");
    }

    #[test]
    fn family_instances_do_not_alias_across_guards() {
        // `t` lives on instance f(0), the written `w` on f(1): same
        // register id, different slots. The store to f(1) cannot touch
        // t's bits, so the guard must stay cache-sourced (a slot guard
        // on f(0)'s slot), not input-sourced.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register f(i : int{0..1}) = write base @ i : bit[8];
                 variable t = f(0)[0] : bool;
                 variable rest0 = f(0)[7..1] : int(7);
                 variable w = f(1)[0] : bool serialized as { if (t == true) f; };
                 variable rest1 = f(1)[7..1] : int(7);
               }"#,
        );
        let w = ir.var(ir.var_id("w").unwrap());
        let wp = w.write_plan.as_ref().expect("distinct-instance tested var must compile");
        assert_eq!(wp.variants.len(), 2);
        assert_eq!(wp.selector[0].input_mask, 0, "t's bit comes from the cache, not the input");
        let f0_slot = ir.reg(ir.reg_id("f").unwrap()).family_slots.as_ref().unwrap().base;
        assert_eq!(
            wp.variants[1].guards,
            vec![PlanGuard { source: GuardSource::Slot(f0_slot), mask: 1, expected: 1 }]
        );
        // t == 0: no flush, w's bit stores cache-only into f(1)'s slot.
        let v0 = ir.variant_steps(&wp.variants[0]);
        assert_eq!(v0.len(), 1);
        assert!(
            matches!(&v0[0], PlanStep::Store(PlanSlot::Fixed(s), _) if *s == f0_slot + 1),
            "{v0:?}"
        );
    }

    #[test]
    fn variables_spanning_family_instances_keep_the_general_path() {
        // `w`'s two segments land on different instances of `f`, but a
        // serialization order names registers, not instances — neither
        // the fused flush nor a cache-only store can attribute the bits
        // per instance, so the write bails loudly.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register f(i : int{0..1}) = write base @ i : bit[8];
                 variable t = f(0)[1] : bool;
                 variable rest0 = f(0)[7..2] : int(6);
                 variable w = f(1)[0] # f(0)[0] : int(2) serialized as { if (t == true) f; };
                 variable rest1 = f(1)[7..1] : int(7);
               }"#,
        );
        let w = ir.var(ir.var_id("w").unwrap());
        assert!(w.write_plan.is_none(), "multi-instance variable must not plan-compile");
        let fb = ir
            .plan_fallbacks()
            .iter()
            .find(|f| f.access == "write w")
            .expect("the bail must be recorded");
        assert!(fb.cause.contains("multiple instances"), "{}", fb.cause);
    }

    #[test]
    fn mem_cell_tested_variables_guard_on_the_cell() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 private variable m : bool;
                 register a = write base @ 0 : bit[8];
                 register c = write base @ 1 : bit[8];
                 variable resta = a[7..1] : int(7);
                 variable restc = c[7..1] : int(7);
                 variable w = c[0] # a[0] : int(2) serialized as { a; if (m == true) c; };
               }"#,
        );
        let w = ir.var(ir.var_id("w").unwrap());
        let wp = w.write_plan.as_ref().expect("mem-tested write must guard on the cell");
        assert_eq!(wp.variants.len(), 2);
        assert_eq!(wp.selector[0].cell, Some(0));
        assert_eq!(
            wp.variants[1].guards,
            vec![PlanGuard { source: GuardSource::Cell(0), mask: u64::MAX, expected: 1 }]
        );
        // m == 0: only `a` flushes; `c`'s staged bit stores cache-only.
        let v0 = ir.variant_steps(&wp.variants[0]);
        assert!(matches!(&v0[0], PlanStep::Store(..)), "{v0:?}");
        assert!(matches!(&v0[1], PlanStep::Write(..)));
        // m == 1: both registers flush, no cache-only store.
        let v1 = ir.variant_steps(&wp.variants[1]);
        assert_eq!(v1.len(), 2);
        assert!(v1.iter().all(|s| matches!(s, PlanStep::Write(..))));
        // Out-of-range cell values (cells store unmasked) abort
        // selection — the caller falls back to the general path.
        let slots = vec![0u64; ir.cache_slots];
        let valid = vec![false; ir.cache_slots];
        assert!(wp.select_variant(&slots, &valid, &[1], 0).is_some());
        assert!(wp.select_variant(&slots, &valid, &[7], 0).is_none());
        // The mem cell itself has plans now: cell-served read, SetCell
        // write.
        let m = ir.var(ir.var_id("m").unwrap());
        assert_eq!(m.read_plan.as_ref().unwrap().cell, Some(0));
        assert!(matches!(
            steps(&ir, m.write_plan.as_ref().unwrap())[0],
            PlanStep::SetCell { cell: 0, value: PlanValue::Input }
        ));
    }

    #[test]
    fn guard_domains_past_the_cap_keep_the_general_path() {
        // The tested variable is 13 bits wide: 2^13 variants exceed the
        // 4096 guard-domain cap, so the order keeps the general path.
        let ir = ir_for(
            r#"device d (base : bit[16] port @ {0..1}) {
                 register a = write base @ 0 : bit[16];
                 register c = write base @ 1 : bit[16];
                 structure s = {
                   variable wide = a[12..0] : int(13);
                   variable rest = a[15..13] : int(3);
                   variable v = c : int(16);
                 } serialized as { a; if (wide == 5) c; };
               }"#,
        );
        let st = ir.strct(ir.struct_id("s").unwrap());
        assert!(st.write_plan.is_none(), "13-bit guard domain must not split");
        // The bail is loud: the fallback record names the cap.
        let fb = ir
            .plan_fallbacks()
            .iter()
            .find(|f| f.access == "write struct s")
            .expect("cap bail must be recorded");
        assert!(fb.cause.contains("4096"), "cause names the cap: {}", fb.cause);
        // A 12-bit tested field (4096 == the cap) still splits.
        let ir2 = ir_for(
            r#"device d (base : bit[16] port @ {0..1}) {
                 register a = write base @ 0 : bit[16];
                 register c = write base @ 1 : bit[16];
                 structure s = {
                   variable wide = a[11..0] : int(12);
                   variable rest = a[15..12] : int(4);
                   variable v = c : int(16);
                 } serialized as { a; if (wide == 5) c; };
               }"#,
        );
        let st2 = ir2.strct(ir2.struct_id("s").unwrap());
        let wp = st2.write_plan.as_ref().expect("12-bit domain fits the cap");
        assert_eq!(wp.variants.len(), 4096);
    }

    #[test]
    fn variants_share_one_contiguous_arena() {
        let ir = ir_for(BUSMOUSE);
        assert!(!ir.plan_arena.is_empty());
        // Every plan range lies inside the arena, and variants of one
        // plan are laid out back to back.
        let mut plans: Vec<&AccessPlan> = Vec::new();
        for v in &ir.vars {
            plans.extend(v.read_plan.as_deref());
            plans.extend(v.write_plan.as_deref());
        }
        for s in &ir.structs {
            plans.extend(s.read_plan.as_deref());
            plans.extend(s.write_plan.as_deref());
        }
        assert!(!plans.is_empty());
        for plan in plans {
            for pair in plan.variants.windows(2) {
                assert_eq!(pair[0].start + pair[0].len, pair[1].start, "variants contiguous");
            }
            for v in &plan.variants {
                assert!((v.start + v.len) as usize <= ir.plan_arena.len());
            }
        }
    }

    #[test]
    fn memory_variables_compile_cell_plans() {
        // Memory variables dispatch on plans too: reads serve the cell
        // directly, writes fold to a SetCell step.
        let ir2 = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable xm : bool;
                 register control = base @ 0, set {xm = false} : bit[8];
                 variable IA = control : int{0..31};
               }"#,
        );
        let xm = ir2.var(ir2.var_id("xm").unwrap());
        let xr = xm.read_plan.as_ref().expect("cell read plan");
        assert_eq!(xr.cell, Some(0));
        assert_eq!(xr.variants[0].len, 0, "cell reads touch no device");
        let xw = xm.write_plan.as_ref().expect("cell write plan");
        assert!(matches!(
            steps(&ir2, xw)[0],
            PlanStep::SetCell { cell: 0, value: PlanValue::Input }
        ));
        // IA's set-action on the memory cell folds into its plans.
        let ia = ir2.var(ir2.var_id("IA").unwrap());
        let rp = ia.read_plan.as_ref().expect("IA read plan");
        let rsteps = steps(&ir2, rp);
        assert_eq!(rsteps.len(), 2);
        assert!(matches!(&rsteps[1], PlanStep::SetCell { cell: 0, value: PlanValue::Const(0) }));
    }

    #[test]
    fn struct_valued_pre_actions_fold() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register idx = write base @ 0, mask '000***0*' : bit[8];
                 structure XS = {
                   variable XA = idx[4..2] : int(3);
                   variable XRAE = idx[0], write trigger for true : bool;
                 };
                 register data = base @ 1, pre {XS = {XA => 5; XRAE => true}} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        let payload = ir.var(ir.var_id("payload").unwrap());
        let rp = payload.read_plan.as_ref().expect("payload read plan");
        let rsteps = steps(&ir, rp);
        // idx flush + data read.
        assert_eq!(rsteps.len(), 2);
        let PlanStep::Write(a, c) = &rsteps[0] else { panic!() };
        assert_eq!(ir.reg(a.reg).name, "idx");
        // XA=5 (bits 4..2) and XRAE=1 (bit 0) folded to constants.
        assert_eq!(c.const_or, 0b0001_0101);
        assert!(c.segs.is_empty());
    }

    #[test]
    fn struct_actions_with_partial_write_orders_store_cache_only() {
        // The struct's serialized-as order flushes only `a`, but the
        // action assigns `fb` on register `bq`: the general path still
        // stores fb's bits into bq's cache. The plan reproduces that
        // with an explicit cache-only `Store` step (formerly a
        // general-path fallback).
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..2}) {
                 register a = write base @ 0 : bit[8];
                 register bq = write base @ 1, mask '****....' : bit[8];
                 structure s = {
                   variable fa = a : int(8);
                   variable fb = bq[7..4] : int(4);
                 } serialized as { a; };
                 register data = read base @ 2, pre {s = {fa => 3; fb => 7}} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        let payload = ir.var(ir.var_id("payload").unwrap());
        let rp = payload.read_plan.as_ref().expect("partial flush order must store cache-only");
        let rsteps = steps(&ir, rp);
        // Store fb's bits into bq's slot, flush a, read data.
        assert_eq!(rsteps.len(), 3);
        let bq_slot = ir.reg(ir.reg_id("bq").unwrap()).slot.unwrap();
        let PlanStep::Store(PlanSlot::Fixed(s), c) = &rsteps[0] else {
            panic!("cache-only store first: {rsteps:?}")
        };
        assert_eq!(*s, bq_slot);
        assert_eq!(c.keep_and, !0xf0, "fb owns bits 7..4");
        assert_eq!(c.const_or, 0x70, "fb => 7 folded");
        assert!(matches!(&rsteps[1], PlanStep::Write(a, _) if ir.reg(a.reg).name == "a"));
        assert!(matches!(&rsteps[2], PlanStep::Read(a) if ir.reg(a.reg).name == "data"));
    }

    #[test]
    fn plans_carry_the_general_paths_depth_accounting() {
        let ir = ir_for(BUSMOUSE);
        // config write: one register, no actions. The general path
        // enters write_register at depth 1.
        let config = ir.var(ir.var_id("config").unwrap());
        assert_eq!(config.write_plan.as_ref().unwrap().max_depth, 1);
        // dx read folds `index = N` pre-actions: read_register at 0,
        // run_actions at 1, write_id_depth(index) at 2, its
        // write_register at 3.
        let dx = ir.var(ir.var_id("dx").unwrap());
        assert_eq!(dx.read_plan.as_ref().unwrap().max_depth, 3);
    }

    #[test]
    fn interned_lookup_matches_linear_scan() {
        let ir = ir_for(BUSMOUSE);
        for (i, v) in ir.vars.iter().enumerate() {
            assert_eq!(ir.var_id(&v.name), Some(VarId(i as u32)), "{}", v.name);
        }
        for (i, r) in ir.regs.iter().enumerate() {
            assert_eq!(ir.reg_id(&r.name), Some(RegId(i as u32)), "{}", r.name);
        }
        assert_eq!(ir.var_id("nonexistent"), None);
        assert_eq!(ir.struct_id("mouse_state"), Some(StructId(0)));
    }

    #[test]
    fn mem_cell_fields_have_no_slot_assemble() {
        // Regression: a private (memory-cell) structure field used to
        // lower with `slot_assemble = Some([])`, sending the runtime's
        // cached getter down the register-assemble path where it
        // returned 0 instead of the cell value.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = base @ 0, set {pm = true} : bit[8];
                 structure s = {
                   private variable pm : bool;
                   variable fa = a : int(8);
                 };
               }"#,
        );
        let pm = ir.var(ir.var_id("pm").unwrap());
        assert!(pm.mem_cell.is_some());
        assert!(pm.slot_assemble.is_none(), "mem cells must not fake a register assemble");
        let fa = ir.var(ir.var_id("fa").unwrap());
        assert!(fa.slot_assemble.is_some());
    }

    #[test]
    fn slot_and_cell_owners_invert_the_layout() {
        let ir = ir_for(BUSMOUSE);
        for (ri, r) in ir.regs.iter().enumerate() {
            let slot = r.slot.expect("busmouse registers are concrete");
            assert_eq!(ir.slot_owner(slot), Some(RegId(ri as u32)), "{}", r.name);
        }
        assert_eq!(ir.slot_owner(ir.cache_slots), None);
        let ir2 = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable xm : bool;
                 register control = base @ 0, set {xm = false} : bit[8];
                 variable IA = control : int{0..31};
               }"#,
        );
        assert_eq!(ir2.mem_owner(0), Some(ir2.var_id("xm").unwrap()));
        assert_eq!(ir2.mem_owner(1), None);
        // Family ranges own no named slot.
        let ir3 = ir_for(
            r#"device d (base : bit[8] port @ {0..3}) {
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable v(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
        let fam = ir3.reg(ir3.reg_id("r").unwrap()).family_slots.as_ref().unwrap();
        assert_eq!(ir3.slot_owner(fam.base), None);
    }

    #[test]
    fn family_offsets_resolve() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..3}) {
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable v(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
        let r = ir.reg(ir.reg_id("r").unwrap());
        let binding = r.read.as_ref().unwrap();
        assert_eq!(ir.resolve_offset(binding, &[2]), 2);
    }
}
