//! Lowering of checked Devil specifications to access plans.
//!
//! The IR sits between the semantic model and the two back ends (the
//! `devil-runtime` interpreter and the `devil-codegen` stub emitters).
//! It precomputes everything an access needs:
//!
//! * per-register **write composition**: forced-bit masks and the bit
//!   segments each variable owns,
//! * per-variable **segment maps** (register bits ↔ variable bits,
//!   across concatenations),
//! * **access orders** honouring `serialized as` plans (with their
//!   conditional steps) and the default chunk/field orders,
//! * **cache layout**: one slot per register, including an indexed
//!   **slot range** per register family (base + stride arithmetic over
//!   the parameter domains, so family instances cache without hashing)
//!   and one cell per private memory variable,
//! * **precompiled plans**: a compile-time symbolic execution of the
//!   general interpreter flattens each access — including foldable
//!   pre/post/set actions, structure flushes and family indexing —
//!   into straight-line [`PlanStep`] lists,
//! * **guard-split variants**: conditional serialization orders
//!   (`if (sngl == CASCADED) icw3`) are compiled by enumerating the raw
//!   cache values of the tested variables and emitting one straight-line
//!   variant per combination; a [`PlanGuard`] list selects the variant
//!   from flat cache slots at run time,
//! * **plan arena**: every variant's steps live in one contiguous
//!   per-device `Vec<PlanStep>` ([`DeviceIr::plan_arena`]); a variant is
//!   a `(start, len)` range into it, so dispatch is an index and
//!   execution walks a single cache-friendly slice.

use devil_sema::model::{
    Action, ActionTarget, ActionValue, Behavior, CheckedDevice, ChunkArg, CondSem, FamilyParam,
    Neutral, Offset, PortBinding, RegId, SerStep, StructId, TypeSem, VarId,
};
use std::sync::Arc;

/// Cap on the number of flat cache slots allocated to one register
/// family (the product of its parameter-domain sizes). Families with
/// larger domains keep the runtime's hashed fallback cache.
const FAMILY_SLOT_CAP: u128 = 4096;

/// Cap on the guard domain of one conditional serialization order: the
/// product of the tested variables' raw-value spaces (`2^width` each).
/// Orders testing wider fields keep the general path, mirroring the
/// family slot cap above.
const GUARD_DOMAIN_CAP: u128 = 4096;

/// Step budget for one compiled plan: accesses whose expansion exceeds
/// this (deep automata, huge serializations) keep the general path.
const PLAN_STEP_BUDGET: usize = 96;

/// Action recursion budget, mirroring the runtime's `MAX_DEPTH`: a
/// specification the runtime would reject as cyclic compiles no plan.
const PLAN_MAX_DEPTH: u32 = 32;

/// The lowered device: everything indexed and precomputed.
#[derive(Clone, Debug)]
pub struct DeviceIr {
    /// Device name.
    pub name: String,
    /// Port descriptors, indexed by the model's `PortId`.
    pub ports: Vec<PortIr>,
    /// Registers, indexed by the model's `RegId`.
    pub regs: Vec<RegIr>,
    /// Variables, indexed by the model's `VarId`.
    pub vars: Vec<VarIr>,
    /// Structures, indexed by the model's `StructId`.
    pub structs: Vec<StructIr>,
    /// Number of memory cells (private unmapped variables).
    pub mem_cells: usize,
    /// Number of flat cache slots: one per non-family register plus one
    /// per family-register instance (domains up to the slot cap).
    pub cache_slots: usize,
    /// The plan arena: every compiled variant's steps, contiguous.
    /// Plans reference `(start, len)` ranges into it, so executing a
    /// variant walks one slice and dispatch never chases a pointer.
    /// Shared via `Arc` so cloning a `DeviceIr` never copies the steps.
    pub plan_arena: Arc<[PlanStep]>,
    /// Reverse slot map: the concrete register owning each flat cache
    /// slot (`None` for slots inside a family's indexed range). The
    /// emitters use this to name guard and assemble slots.
    slot_owners: Vec<Option<RegId>>,
    /// Reverse memory-cell map: the private variable owning each cell.
    mem_owners: Vec<VarId>,
    /// Interned name table: `(name, id)` sorted by name, for
    /// hash-free variable resolution.
    var_names: Vec<(String, VarId)>,
    /// Interned register names, sorted.
    reg_names: Vec<(String, RegId)>,
    /// Interned structure names, sorted.
    struct_names: Vec<(String, StructId)>,
}

/// A value available to a plan step at execution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanValue {
    /// The value being written by the access (the stub's argument).
    Input,
    /// A constant folded at lowering time.
    Const(u64),
    /// The caller's family argument `args[i]`.
    Arg(usize),
}

impl PlanValue {
    /// Resolves the value against the call's arguments and input.
    #[inline]
    pub fn resolve(self, args: &[u64], input: u64) -> u64 {
        match self {
            PlanValue::Input => input,
            PlanValue::Const(c) => c,
            PlanValue::Arg(i) => args[i],
        }
    }
}

/// A plan step's port offset.
#[derive(Clone, Copy, Debug)]
pub enum PlanOffset {
    /// A constant offset.
    Const(u64),
    /// The caller's family argument `args[i]`.
    Arg(usize),
}

impl PlanOffset {
    /// Resolves the offset against the call's arguments.
    #[inline]
    pub fn resolve(self, args: &[u64]) -> u64 {
        match self {
            PlanOffset::Const(c) => c,
            PlanOffset::Arg(i) => args[i],
        }
    }
}

/// One family-parameter dimension of a register's slot range.
#[derive(Clone, Debug)]
pub struct FamilyDim {
    /// Slots advanced per domain-index increment.
    pub stride: usize,
    /// The parameter domain as `(lo, hi, index_base)` inclusive ranges.
    pub ranges: Vec<(u64, u64, usize)>,
    /// Total number of domain values.
    pub count: usize,
}

impl FamilyDim {
    /// The dense domain index of `v`, or `None` outside the domain.
    #[inline]
    pub fn index_of(&self, v: u64) -> Option<usize> {
        self.ranges
            .iter()
            .find(|&&(lo, hi, _)| (lo..=hi).contains(&v))
            .map(|&(lo, _, base)| base + (v - lo) as usize)
    }
}

/// The flat cache-slot range of a register family: instance slots are
/// `base + Σ index(argᵢ)·strideᵢ` — pure arithmetic, no hashing.
#[derive(Clone, Debug)]
pub struct FamilySlots {
    /// First slot of the range.
    pub base: usize,
    /// Number of slots (the product of the domain sizes).
    pub count: usize,
    /// One dimension per family parameter.
    pub dims: Vec<FamilyDim>,
}

impl FamilySlots {
    /// The flat slot of one instance; `None` when an argument falls
    /// outside the declared domain.
    pub fn slot_of(&self, args: &[u64]) -> Option<usize> {
        if args.len() != self.dims.len() {
            return None;
        }
        let mut slot = self.base;
        for (dim, &a) in self.dims.iter().zip(args) {
            slot += dim.index_of(a)? * dim.stride;
        }
        Some(slot)
    }
}

/// A plan step's cache slot, resolved from family arguments.
#[derive(Clone, Debug)]
pub enum PlanSlot {
    /// A concrete register's slot.
    Fixed(usize),
    /// A family instance: `base` plus one domain-index times stride per
    /// argument dimension (constant arguments are folded into `base`).
    Indexed {
        /// Folded base slot.
        base: usize,
        /// `(argument index, dimension)` pairs.
        dims: Vec<(usize, FamilyDim)>,
    },
}

impl PlanSlot {
    /// Resolves the slot. Plan compilation proved every reachable
    /// argument indexable, so resolution cannot fail on validated args.
    #[inline]
    pub fn resolve(&self, args: &[u64]) -> usize {
        match self {
            PlanSlot::Fixed(s) => *s,
            PlanSlot::Indexed { base, dims } => {
                let mut slot = *base;
                for (arg, dim) in dims {
                    slot += dim.index_of(args[*arg]).expect("family argument validated by caller")
                        * dim.stride;
                }
                slot
            }
        }
    }
}

/// The inclusive-exclusive slot range a [`PlanSlot`] may resolve to.
fn slot_span(s: &PlanSlot) -> (usize, usize) {
    match s {
        PlanSlot::Fixed(i) => (*i, i + 1),
        PlanSlot::Indexed { base, dims } => {
            let span: usize = dims.iter().map(|(_, d)| d.count.saturating_sub(1) * d.stride).sum();
            (*base, base + span + 1)
        }
    }
}

/// Conservative may-alias test between two plan slots.
fn slots_may_alias(a: &PlanSlot, b: &PlanSlot) -> bool {
    let (al, ah) = slot_span(a);
    let (bl, bh) = slot_span(b);
    al < bh && bl < ah
}

/// One value-bearing segment of a write step (constant values are
/// folded into [`WriteCompose::const_or`] instead).
#[derive(Clone, Debug)]
pub struct WriteSeg {
    /// Register-bit placement.
    pub seg: FieldSeg,
    /// The inserted value (`Input` or `Arg`).
    pub value: PlanValue,
}

/// Write composition of one plan step: the raw value sent to the
/// device is `((cached & keep_and) | const_or | segs…) & out_and |
/// out_or`, exactly the general interpreter's store/compose/mask
/// pipeline folded into constants.
#[derive(Clone, Debug)]
pub struct WriteCompose {
    /// Cached bits to keep (clears written segments and trigger
    /// neighbours' bits).
    pub keep_and: u64,
    /// Folded constants: trigger-neutral substitutions plus
    /// constant-valued segment inserts.
    pub const_or: u64,
    /// Runtime-valued segment inserts.
    pub segs: Vec<WriteSeg>,
    /// Register AND-mask applied to the outgoing write.
    pub out_and: u64,
    /// Register OR-mask applied to the outgoing write.
    pub out_or: u64,
}

/// A register access of a compiled plan.
#[derive(Clone, Debug)]
pub struct AccessStep {
    /// The accessed register.
    pub reg: RegId,
    /// Cache slot of the accessed instance.
    pub slot: PlanSlot,
    /// Port index.
    pub port: u32,
    /// Port offset.
    pub offset: PlanOffset,
    /// Access width in bits.
    pub size: u32,
}

/// One straight-line step of a compiled plan.
#[derive(Clone, Debug)]
pub enum PlanStep {
    /// Device read into the register's cache slot.
    Read(AccessStep),
    /// Composed, masked device write updating the cache slot.
    Write(AccessStep, WriteCompose),
    /// Private-memory update (a folded mem-variable action).
    SetCell {
        /// Target memory cell.
        cell: usize,
        /// Stored value.
        value: PlanValue,
    },
}

impl PlanStep {
    fn slot(&self) -> Option<&PlanSlot> {
        match self {
            PlanStep::Read(a) | PlanStep::Write(a, _) => Some(&a.slot),
            PlanStep::SetCell { .. } => None,
        }
    }
}

/// One run-time guard of a plan variant: the variant applies when the
/// cached raw bits at `slot`, masked by `mask`, equal `expected`.
/// Never-cached slots compare as 0 — exactly the general interpreter's
/// `assemble_cached` default for unread registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanGuard {
    /// The guarded flat cache slot.
    pub slot: usize,
    /// Register bits of the tested segment.
    pub mask: u64,
    /// Expected masked value (the tested variable's bits in place).
    pub expected: u64,
}

impl PlanGuard {
    /// Whether the guard holds for the given cache state.
    #[inline]
    pub fn holds(&self, slots: &[u64], slot_valid: &[bool]) -> bool {
        let raw = if slot_valid[self.slot] { slots[self.slot] } else { 0 };
        raw & self.mask == self.expected
    }
}

/// One straight-line version of a (possibly guard-split) plan: a
/// conjunction of slot guards plus a step range in the device's
/// [plan arena](DeviceIr::plan_arena).
#[derive(Clone, Debug)]
pub struct PlanVariant {
    /// Guards selecting this variant; all must hold. Empty for the
    /// single variant of an unconditional access. Selection does not
    /// scan these — [`AccessPlan::select_variant`] indexes by the
    /// assembled tested values — but they document each variant's
    /// domain and back the debug cross-check.
    pub guards: Vec<PlanGuard>,
    /// First step in the arena.
    pub start: u32,
    /// Number of steps.
    pub len: u32,
}

/// One tested variable of a guard-split plan's variant selector: the
/// segments assembling its value from flat cache slots, and the size
/// of its raw-value space.
#[derive(Clone, Debug)]
pub struct SelectorDim {
    /// `(slot, segment)` pairs assembling the tested value (uncached
    /// slots contribute 0, as in the general interpreter).
    pub segs: Vec<(usize, FieldSeg)>,
    /// `2^width` — the mixed-radix base of this dimension.
    pub radix: usize,
}

/// A precompiled access plan for one variable or structure direction.
///
/// Compiled whenever the whole access — including pre/post/set actions
/// and structure flushes it triggers — is statically a straight line of
/// register accesses and memory-cell updates for **every** combination
/// of the values its serialization conditionals test. Unconditional
/// accesses compile a single unguarded variant; conditional orders
/// guard-split into one variant per tested-value combination. Action
/// values read from other variables, hashed family caches, nested
/// conditionals reached through actions, guard domains past
/// [`GUARD_DOMAIN_CAP`] and over-budget expansions fall back to the
/// general interpreter.
#[derive(Clone, Debug, Default)]
pub struct AccessPlan {
    /// Straight-line variants. The guard enumeration is exhaustive over
    /// the tested variables' raw-value spaces, so exactly one variant
    /// matches any cache state, and variants are laid out in
    /// mixed-radix order of the tested values (first tested variable
    /// most significant) so selection is an indexed lookup.
    pub variants: Vec<PlanVariant>,
    /// The tested variables' cache segments, one dimension per tested
    /// variable in enumeration order. Empty for unconditional plans.
    pub selector: Vec<SelectorDim>,
    /// `(slot, segment)` pairs assembling the read value from the cache
    /// (empty for write plans; shared by all variants).
    pub assemble: Vec<(PlanSlot, FieldSeg)>,
    /// The deepest action-recursion level the general interpreter would
    /// reach executing this access from depth 0 (the maximum over all
    /// variants). The runtime only takes a plan when the current depth
    /// plus this bound stays within its recursion limit, so a plan can
    /// never succeed where the general path would report
    /// `RecursionLimit`.
    pub max_depth: u32,
}

impl AccessPlan {
    /// Selects the variant matching the given cache state: the tested
    /// variables assemble from their slots and index the mixed-radix
    /// variant table directly — O(tested segments), never a scan over
    /// the variants, so a wide guard domain costs no more to dispatch
    /// than a narrow one. Unconditional plans return their single
    /// variant without touching the cache. `None` is unreachable for
    /// plans this crate compiles (enumeration is exhaustive over the
    /// full raw-value spaces) but callers treat it as a general-path
    /// fallback for defence in depth.
    #[inline]
    pub fn select_variant(&self, slots: &[u64], slot_valid: &[bool]) -> Option<&PlanVariant> {
        if self.selector.is_empty() {
            return self.variants.first();
        }
        let mut idx = 0usize;
        for dim in &self.selector {
            let mut v = 0u64;
            for &(slot, seg) in &dim.segs {
                let raw = if slot_valid[slot] { slots[slot] } else { 0 };
                v |= seg.extract(raw);
            }
            idx = idx * dim.radix + v as usize;
        }
        let variant = self.variants.get(idx)?;
        debug_assert!(
            variant.guards.iter().all(|g| g.holds(slots, slot_valid)),
            "selector index and guard list disagree"
        );
        Some(variant)
    }
}

/// A port descriptor.
#[derive(Clone, Debug)]
pub struct PortIr {
    /// Port name (parameter name in the spec).
    pub name: String,
    /// Access width in bits.
    pub width: u32,
}

/// One bit segment tying a register to a variable.
///
/// Register bits `reg_lo..=reg_hi` correspond to variable bits starting
/// at `var_lo` (inclusive, same length, same order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldSeg {
    /// The owning variable.
    pub var: VarId,
    /// Most significant register bit of the segment.
    pub reg_hi: u32,
    /// Least significant register bit of the segment.
    pub reg_lo: u32,
    /// Variable bit corresponding to `reg_lo`.
    pub var_lo: u32,
}

impl FieldSeg {
    /// Number of bits in the segment.
    pub fn width(&self) -> u32 {
        self.reg_hi - self.reg_lo + 1
    }

    /// Extracts this segment from a raw register value, positioned at
    /// the variable's bit offsets.
    pub fn extract(&self, reg_raw: u64) -> u64 {
        let w = self.width();
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        ((reg_raw >> self.reg_lo) & mask) << self.var_lo
    }

    /// Positions variable bits into register bit positions.
    pub fn insert(&self, var_val: u64) -> u64 {
        let w = self.width();
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        ((var_val >> self.var_lo) & mask) << self.reg_lo
    }

    /// The register-bit mask covered by this segment.
    pub fn reg_mask(&self) -> u64 {
        let w = self.width();
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        mask << self.reg_lo
    }
}

/// A lowered register.
#[derive(Clone, Debug)]
pub struct RegIr {
    /// Register name.
    pub name: String,
    /// Size in bits (== the bound port's access width).
    pub size: u32,
    /// Read binding (port index + offset), if readable.
    pub read: Option<PortBinding>,
    /// Write binding, if writable.
    pub write: Option<PortBinding>,
    /// OR-mask applied on writes (forced-1 bits).
    pub or_mask: u64,
    /// AND-mask applied on writes (clears forced-0 bits).
    pub and_mask: u64,
    /// Family parameters (empty for concrete registers).
    pub params: Vec<FamilyParam>,
    /// Pre-access actions. `Arc`-shared: the general interpreter takes
    /// a handle per register access, which must not allocate.
    pub pre: Arc<[Action]>,
    /// Post-access actions.
    pub post: Arc<[Action]>,
    /// Private-state updates on access.
    pub set: Arc<[Action]>,
    /// Every variable segment laid over this register.
    pub fields: Vec<FieldSeg>,
    /// Whether any variable on this register is volatile (the register's
    /// cached value may go stale on its own).
    pub volatile: bool,
    /// Flat cache slot for non-family registers; `None` for families.
    pub slot: Option<usize>,
    /// Indexed slot range for family registers whose domain fits the
    /// slot cap; `None` for concrete registers and oversized families
    /// (which the runtime caches in a hashed fallback).
    pub family_slots: Option<FamilySlots>,
}

/// A lowered variable.
#[derive(Clone, Debug)]
pub struct VarIr {
    /// Variable name.
    pub name: String,
    /// Hidden from the functional interface.
    pub private: bool,
    /// Bit width.
    pub width: u32,
    /// The variable's type.
    pub ty: TypeSem,
    /// Behaviour flags.
    pub behavior: Behavior,
    /// Trigger neutral value.
    pub neutral: Option<Neutral>,
    /// Family parameters (variable arrays).
    pub params: Vec<FamilyParam>,
    /// Register segments backing the variable, with the family arguments
    /// used for each segment's register.
    pub segs: Vec<VarSeg>,
    /// Register access order for reads.
    pub read_order: Vec<SerStep>,
    /// Register access order for writes.
    pub write_order: Vec<SerStep>,
    /// Private-state updates when the variable is written.
    pub set: Vec<Action>,
    /// Cell index for unmapped private memory variables.
    pub mem_cell: Option<usize>,
    /// Parent structure for fields.
    pub parent: Option<StructId>,
    /// Whether the variable is readable.
    pub readable: bool,
    /// Whether the variable is writable.
    pub writable: bool,
    /// Precompiled read plan, when the access qualifies. Shared via
    /// `Arc` so cloning a `VarIr` (the interpreter's general path does)
    /// never deep-copies a plan.
    pub read_plan: Option<Arc<AccessPlan>>,
    /// Precompiled write plan, when the access qualifies.
    pub write_plan: Option<Arc<AccessPlan>>,
    /// `(slot, segment)` pairs assembling the variable from fixed cache
    /// slots — the hash-free cached-getter path for structure fields.
    pub slot_assemble: Option<Vec<(usize, FieldSeg)>>,
}

impl RegIr {
    /// Whether the register can be read.
    pub fn readable(&self) -> bool {
        self.read.is_some()
    }

    /// Whether the register can be written.
    pub fn writable(&self) -> bool {
        self.write.is_some()
    }
}

/// One register segment of a variable, with family arguments.
#[derive(Clone, Debug)]
pub struct VarSeg {
    /// The backing register.
    pub reg: RegId,
    /// Family arguments used to address the register.
    pub args: Vec<ChunkArg>,
    /// The bit correspondence.
    pub seg: FieldSeg,
}

/// A lowered structure.
#[derive(Clone, Debug)]
pub struct StructIr {
    /// Structure name.
    pub name: String,
    /// Member variables.
    pub fields: Vec<VarId>,
    /// Register access order for a structure read.
    pub read_order: Vec<SerStep>,
    /// Register access order for a structure write.
    pub write_order: Vec<SerStep>,
    /// Precompiled straight-line structure read (the Figure 3 hot
    /// loop), when every step — index-register pre-writes included —
    /// is statically decidable.
    pub read_plan: Option<Arc<AccessPlan>>,
    /// Precompiled structure write (cache-composed flush).
    pub write_plan: Option<Arc<AccessPlan>>,
}

/// Lowers a checked device to IR.
pub fn lower(model: &CheckedDevice) -> DeviceIr {
    let ports =
        model.ports.iter().map(|p| PortIr { name: p.name.clone(), width: p.width }).collect();

    // Registers: masks, flat cache slots and (initially empty) field
    // lists. Non-family registers get one slot each; families with
    // enumerable domains get a contiguous indexed range.
    let mut cache_slots = 0usize;
    let mut regs: Vec<RegIr> = model
        .registers
        .iter()
        .map(|r| {
            let (or_mask, and_mask) = r.forced_masks();
            let (slot, family_slots) = if r.params.is_empty() {
                let s = cache_slots;
                cache_slots += 1;
                (Some(s), None)
            } else {
                (None, family_slot_range(&r.params, &mut cache_slots))
            };
            RegIr {
                name: r.name.clone(),
                size: r.size,
                read: r.read.clone(),
                write: r.write.clone(),
                or_mask,
                and_mask,
                params: r.params.clone(),
                pre: r.pre.clone().into(),
                post: r.post.clone().into(),
                set: r.set.clone().into(),
                fields: Vec::new(),
                volatile: false,
                slot,
                family_slots,
            }
        })
        .collect();

    // Variables: segment maps; fill register field lists as we go.
    let mut mem_cells = 0usize;
    let mut vars: Vec<VarIr> = Vec::with_capacity(model.variables.len());
    for (vi, v) in model.variables.iter().enumerate() {
        let vid = VarId(vi as u32);
        let width = v.width();
        let mut segs: Vec<VarSeg> = Vec::new();
        if let Some(chunks) = &v.bits {
            // Walk chunks MSB-first; var bit positions count down.
            let mut next_hi = width as i64 - 1;
            for chunk in chunks {
                for &(hi, lo) in &chunk.ranges {
                    let w = (hi - lo + 1) as i64;
                    let var_lo = (next_hi - w + 1) as u32;
                    let seg = FieldSeg { var: vid, reg_hi: hi, reg_lo: lo, var_lo };
                    regs[chunk.reg.0 as usize].fields.push(seg);
                    if v.behavior.volatile {
                        regs[chunk.reg.0 as usize].volatile = true;
                    }
                    segs.push(VarSeg { reg: chunk.reg, args: chunk.args.clone(), seg });
                    next_hi -= w;
                }
            }
            debug_assert_eq!(next_hi, -1, "segment walk must cover the variable exactly");
        }
        let mem_cell = if v.bits.is_none() {
            let c = mem_cells;
            mem_cells += 1;
            Some(c)
        } else {
            None
        };
        // Access orders: explicit plan or default (distinct registers in
        // chunk order — MSB first for reads *and* writes; the paper's
        // 8237 example overrides reads with `serialized as`).
        let default_order: Vec<SerStep> = {
            let mut seen: Vec<RegId> = Vec::new();
            for s in &segs {
                if !seen.contains(&s.reg) {
                    seen.push(s.reg);
                }
            }
            seen.into_iter().map(SerStep::Reg).collect()
        };
        let (read_order, write_order) = match &v.serialized {
            Some(plan) => (plan.steps.clone(), plan.steps.clone()),
            None => (default_order.clone(), default_order),
        };
        let readable = v
            .bits
            .as_ref()
            .map(|cs| cs.iter().all(|c| model.reg(c.reg).readable()))
            .unwrap_or(true);
        let writable = v
            .bits
            .as_ref()
            .map(|cs| cs.iter().all(|c| model.reg(c.reg).writable()))
            .unwrap_or(true);
        // Memory cells have no register bits to assemble: they must
        // keep `None` so cached getters read the cell, not an empty
        // (always-0) segment list.
        let slot_assemble = if mem_cell.is_some() {
            None
        } else {
            segs.iter().map(|s| regs[s.reg.0 as usize].slot.map(|sl| (sl, s.seg))).collect()
        };
        vars.push(VarIr {
            name: v.name.clone(),
            private: v.private,
            width,
            ty: v.ty.clone(),
            behavior: v.behavior,
            neutral: v.neutral,
            params: v.params.clone(),
            segs,
            read_order,
            write_order,
            set: v.set.clone(),
            mem_cell,
            parent: v.parent,
            readable,
            writable,
            read_plan: None,
            write_plan: None,
            slot_assemble,
        });
    }

    // Structures: default order = registers of fields in field order.
    let mut structs: Vec<StructIr> = model
        .structures
        .iter()
        .map(|s| {
            let default_order: Vec<SerStep> = {
                let mut seen: Vec<RegId> = Vec::new();
                for &fid in &s.fields {
                    for seg in &vars[fid.0 as usize].segs {
                        if !seen.contains(&seg.reg) {
                            seen.push(seg.reg);
                        }
                    }
                }
                seen.into_iter().map(SerStep::Reg).collect()
            };
            let (read_order, write_order) = match &s.serialized {
                Some(plan) => (plan.steps.clone(), plan.steps.clone()),
                None => (default_order.clone(), default_order),
            };
            StructIr {
                name: s.name.clone(),
                fields: s.fields.clone(),
                read_order,
                write_order,
                read_plan: None,
                write_plan: None,
            }
        })
        .collect();

    // Final pass: symbolically execute every access now that registers,
    // variables and structures (and thus trigger layouts and flush
    // orders) are fully known. All compiled variants append their steps
    // to one shared arena.
    let mut arena: Vec<PlanStep> = Vec::new();
    for vi in 0..vars.len() {
        let (read_plan, write_plan) =
            compile_var_plans(VarId(vi as u32), &vars, &regs, &structs, &mut arena);
        vars[vi].read_plan = read_plan;
        vars[vi].write_plan = write_plan;
    }
    for si in 0..structs.len() {
        let (read_plan, write_plan) =
            compile_struct_plans(StructId(si as u32), &vars, &regs, &structs, &mut arena);
        structs[si].read_plan = read_plan;
        structs[si].write_plan = write_plan;
    }

    let mut var_names: Vec<(String, VarId)> =
        vars.iter().enumerate().map(|(i, v)| (v.name.clone(), VarId(i as u32))).collect();
    var_names.sort_by(|a, b| a.0.cmp(&b.0));
    let mut reg_names: Vec<(String, RegId)> =
        regs.iter().enumerate().map(|(i, r)| (r.name.clone(), RegId(i as u32))).collect();
    reg_names.sort_by(|a, b| a.0.cmp(&b.0));
    let mut slot_owners: Vec<Option<RegId>> = vec![None; cache_slots];
    for (ri, r) in regs.iter().enumerate() {
        if let Some(s) = r.slot {
            slot_owners[s] = Some(RegId(ri as u32));
        }
    }
    let mut mem_owners: Vec<VarId> = vec![VarId(0); mem_cells];
    for (vi, v) in vars.iter().enumerate() {
        if let Some(c) = v.mem_cell {
            mem_owners[c] = VarId(vi as u32);
        }
    }

    let mut struct_names: Vec<(String, StructId)> = structs
        .iter()
        .enumerate()
        .map(|(i, s): (usize, &StructIr)| (s.name.clone(), StructId(i as u32)))
        .collect();
    struct_names.sort_by(|a, b| a.0.cmp(&b.0));

    DeviceIr {
        name: model.name.clone(),
        ports,
        regs,
        vars,
        structs,
        mem_cells,
        cache_slots,
        plan_arena: arena.into(),
        slot_owners,
        mem_owners,
        var_names,
        reg_names,
        struct_names,
    }
}

/// Allocates the indexed slot range of one register family, or `None`
/// when the domain product exceeds [`FAMILY_SLOT_CAP`].
fn family_slot_range(params: &[FamilyParam], cache_slots: &mut usize) -> Option<FamilySlots> {
    let counts: Vec<u128> = params
        .iter()
        .map(|p| p.values.iter().map(|&(lo, hi)| (hi - lo) as u128 + 1).sum())
        .collect();
    let total: u128 = counts.iter().product();
    if total == 0 || total > FAMILY_SLOT_CAP {
        return None;
    }
    // Row-major: the last parameter varies fastest.
    let mut dims: Vec<FamilyDim> = Vec::with_capacity(params.len());
    let mut stride = total as usize;
    for (p, &count) in params.iter().zip(&counts) {
        stride /= count as usize;
        let mut ranges = Vec::with_capacity(p.values.len());
        let mut base = 0usize;
        for &(lo, hi) in &p.values {
            ranges.push((lo, hi, base));
            base += (hi - lo) as usize + 1;
        }
        dims.push(FamilyDim { stride, ranges, count: count as usize });
    }
    let base = *cache_slots;
    *cache_slots += total as usize;
    Some(FamilySlots { base, count: total as usize, dims })
}

/// Flattens a serialization order to register ids; `None` when it has
/// conditional steps. Used for accesses reached *through actions*,
/// whose conditions would be evaluated mid-plan — top-level accesses
/// guard-split conditional orders instead (see [`guard_split`]).
fn regs_of(order: &[SerStep]) -> Option<Vec<RegId>> {
    order
        .iter()
        .map(|s| match s {
            SerStep::Reg(r) => Some(*r),
            SerStep::If { .. } => None,
        })
        .collect()
}

/// Compile-time symbolic execution of the general interpreter.
///
/// Walks the exact recursion `devil-runtime` performs for an access and
/// records the device operations as straight-line steps. Anything not
/// statically decidable — conditional serialization, action values read
/// from other variables, hashed family caches, out-of-domain arguments,
/// over-budget expansion — aborts compilation (`None`), and the access
/// keeps the general path.
struct PlanBuilder<'a> {
    vars: &'a [VarIr],
    regs: &'a [RegIr],
    structs: &'a [StructIr],
    /// The compiled access's family parameters: the domains behind
    /// [`PlanValue::Arg`] references.
    params: &'a [FamilyParam],
    steps: Vec<PlanStep>,
    /// Deepest recursion level visited, with the exact accounting of
    /// the general interpreter (see [`AccessPlan::max_depth`]).
    max_depth: u32,
    /// Slots that must not be touched until their own write step is
    /// emitted: the general path composes a register write from the
    /// cache *before* running its pre-actions and stores variable bits
    /// before the register loop, while a plan composes at execution
    /// time — an interleaved touch of a pending slot would diverge.
    guarded: Vec<Option<PlanSlot>>,
}

impl<'a> PlanBuilder<'a> {
    fn new(
        vars: &'a [VarIr],
        regs: &'a [RegIr],
        structs: &'a [StructIr],
        params: &'a [FamilyParam],
    ) -> Self {
        PlanBuilder {
            vars,
            regs,
            structs,
            params,
            steps: Vec::new(),
            max_depth: 0,
            guarded: Vec::new(),
        }
    }

    /// Records a visited recursion level; bails past the budget (the
    /// general interpreter would report `RecursionLimit`).
    fn note_depth(&mut self, depth: u32) -> Option<()> {
        self.max_depth = self.max_depth.max(depth);
        if depth > PLAN_MAX_DEPTH {
            return None;
        }
        Some(())
    }

    /// Appends a step, enforcing the budget and the pending-slot guard.
    fn emit(&mut self, step: PlanStep) -> Option<()> {
        if self.steps.len() >= PLAN_STEP_BUDGET {
            return None;
        }
        if let Some(slot) = step.slot() {
            if self.guarded.iter().flatten().any(|g| slots_may_alias(g, slot)) {
                return None;
            }
        }
        self.steps.push(step);
        Some(())
    }

    /// The plan slot of a register instance. Bails on hashed families
    /// and on argument domains not fully indexable.
    fn slot_for(&self, rid: RegId, reg_args: &[PlanValue]) -> Option<PlanSlot> {
        let reg = &self.regs[rid.0 as usize];
        if let Some(s) = reg.slot {
            return Some(PlanSlot::Fixed(s));
        }
        let fam = reg.family_slots.as_ref()?;
        if fam.dims.len() != reg_args.len() {
            return None;
        }
        let mut base = fam.base;
        let mut dims = Vec::new();
        for (dim, arg) in fam.dims.iter().zip(reg_args) {
            match arg {
                PlanValue::Const(c) => base += dim.index_of(*c)? * dim.stride,
                PlanValue::Arg(i) => {
                    // Every value the caller may pass must be indexable.
                    let domain = self.params.get(*i)?;
                    if !domain.iter().all(|v| dim.index_of(v).is_some()) {
                        return None;
                    }
                    dims.push((*i, dim.clone()));
                }
                PlanValue::Input => return None,
            }
        }
        Some(if dims.is_empty() { PlanSlot::Fixed(base) } else { PlanSlot::Indexed { base, dims } })
    }

    /// The register offset as a plan offset.
    fn offset_for(binding: &PortBinding, reg_args: &[PlanValue]) -> Option<PlanOffset> {
        match binding.offset {
            Offset::Const(c) => Some(PlanOffset::Const(c)),
            Offset::Param(i) => match reg_args.get(i)? {
                PlanValue::Const(c) => Some(PlanOffset::Const(*c)),
                PlanValue::Arg(j) => Some(PlanOffset::Arg(*j)),
                PlanValue::Input => None,
            },
        }
    }

    /// The family args variable `vid` uses for register `rid` (the
    /// general path's `args_for_reg`: first matching segment wins).
    fn reg_args_for(&self, vid: VarId, rid: RegId, var_args: &[PlanValue]) -> Vec<PlanValue> {
        let var = &self.vars[vid.0 as usize];
        for seg in &var.segs {
            if seg.reg == rid {
                return chunk_args(&seg.args, var_args);
            }
        }
        Vec::new()
    }

    /// Mirrors the general path's write composition for one variable on
    /// one register: clear own segments and trigger neighbours, fold
    /// neutral substitutions and constant values, keep the rest cached.
    fn compose_one(&self, vid: VarId, rid: RegId, value: PlanValue) -> WriteCompose {
        let reg = &self.regs[rid.0 as usize];
        let var = &self.vars[vid.0 as usize];
        let mut clear = 0u64;
        let mut const_or = 0u64;
        let mut segs = Vec::new();
        for s in &var.segs {
            if s.reg == rid {
                clear |= s.seg.reg_mask();
                match value {
                    PlanValue::Const(c) => const_or |= s.seg.insert(c),
                    v => segs.push(WriteSeg { seg: s.seg, value: v }),
                }
            }
        }
        for field in &reg.fields {
            if field.var == vid {
                continue;
            }
            let other = &self.vars[field.var.0 as usize];
            if other.behavior.write_trigger {
                if let Some(neutral) = other.neutral {
                    let nv = match neutral {
                        Neutral::Except(n) => n,
                        // `for X`: every value except X is neutral.
                        Neutral::For(x) => u64::from(x == 0),
                    };
                    clear |= field.reg_mask();
                    const_or |= field.insert(nv);
                }
            }
        }
        WriteCompose {
            keep_and: !clear,
            const_or,
            segs,
            out_and: reg.and_mask,
            out_or: reg.or_mask,
        }
    }

    /// Simulates one register write: pre-actions, composed masked
    /// write, post/set actions. `unguard` is the index of the caller's
    /// pending-slot entry to release just before the write emits.
    fn write_reg(
        &mut self,
        rid: RegId,
        reg_args: &[PlanValue],
        compose: WriteCompose,
        unguard: Option<usize>,
        depth: u32,
    ) -> Option<()> {
        self.note_depth(depth)?;
        let reg = &self.regs[rid.0 as usize];
        let (pre, post, set) = (reg.pre.clone(), reg.post.clone(), reg.set.clone());
        let binding = reg.write.clone()?;
        let (port, size) = (binding.port.0, reg.size);
        let slot = self.slot_for(rid, reg_args)?;
        let offset = Self::offset_for(&binding, reg_args)?;
        // The register's own slot is pending while its pre-actions run
        // (the general path composed the raw value before them).
        let own_guard = self.guarded.len();
        self.guarded.push(Some(slot.clone()));
        self.actions(&pre, reg_args, depth + 1)?;
        self.guarded[own_guard] = None;
        if let Some(i) = unguard {
            self.guarded[i] = None;
        }
        self.emit(PlanStep::Write(AccessStep { reg: rid, slot, port, offset, size }, compose))?;
        self.actions(&post, reg_args, depth + 1)?;
        self.actions(&set, reg_args, depth + 1)
    }

    /// Simulates one register read: pre-actions, read, post/set.
    fn read_reg(&mut self, rid: RegId, reg_args: &[PlanValue], depth: u32) -> Option<()> {
        self.note_depth(depth)?;
        let reg = &self.regs[rid.0 as usize];
        let (pre, post, set) = (reg.pre.clone(), reg.post.clone(), reg.set.clone());
        let binding = reg.read.clone()?;
        let (port, size) = (binding.port.0, reg.size);
        let slot = self.slot_for(rid, reg_args)?;
        let offset = Self::offset_for(&binding, reg_args)?;
        self.actions(&pre, reg_args, depth + 1)?;
        self.emit(PlanStep::Read(AccessStep { reg: rid, slot, port, offset, size }))?;
        self.actions(&post, reg_args, depth + 1)?;
        self.actions(&set, reg_args, depth + 1)
    }

    /// Simulates a variable read over a pre-flattened register order.
    fn read_var_ordered(&mut self, vid: VarId, args: &[PlanValue], order: &[RegId]) -> Option<()> {
        let var = &self.vars[vid.0 as usize];
        if var.mem_cell.is_some() || !var.readable {
            return None;
        }
        for &rid in order {
            let reg_args = self.reg_args_for(vid, rid, args);
            self.read_reg(rid, &reg_args, 0)?;
        }
        Some(())
    }

    /// Simulates a variable write reached through an action. Nested
    /// conditional orders keep the general path: their conditions would
    /// be evaluated mid-access, where the plan's entry guards no longer
    /// describe the cache.
    fn write_var(
        &mut self,
        vid: VarId,
        value: PlanValue,
        args: &[PlanValue],
        depth: u32,
    ) -> Option<()> {
        let order = regs_of(&self.vars[vid.0 as usize].write_order)?;
        self.write_var_ordered(vid, value, args, &order, depth)
    }

    /// Simulates a variable write over a pre-flattened register order:
    /// the general path's store/compose fused per register, then the
    /// variable's own set actions.
    fn write_var_ordered(
        &mut self,
        vid: VarId,
        value: PlanValue,
        args: &[PlanValue],
        order: &[RegId],
        depth: u32,
    ) -> Option<()> {
        self.note_depth(depth)?;
        let var = &self.vars[vid.0 as usize];
        if var.params.len() != args.len() {
            return None;
        }
        let set = var.set.clone();
        if let Some(cell) = var.mem_cell {
            self.emit(PlanStep::SetCell { cell, value })?;
            return self.actions(&set, args, depth + 1);
        }
        if !var.writable {
            return None;
        }
        // The general path stores the new bits into every backing
        // register's cache up front; the fused formula inserts them at
        // each register's own write step, so the order must cover all
        // backing registers and none may be touched early.
        if !var.segs.iter().all(|s| order.contains(&s.reg)) {
            return None;
        }
        let guard_start = self.guarded.len();
        for &rid in order {
            let reg_args = self.reg_args_for(vid, rid, args);
            let slot = self.slot_for(rid, &reg_args)?;
            self.guarded.push(Some(slot));
        }
        for (k, &rid) in order.iter().enumerate() {
            let reg_args = self.reg_args_for(vid, rid, args);
            let compose = self.compose_one(vid, rid, value);
            // The general path enters `write_register` at depth + 1.
            self.write_reg(rid, &reg_args, compose, Some(guard_start + k), depth + 1)?;
        }
        self.guarded.truncate(guard_start);
        self.actions(&set, args, depth + 1)
    }

    /// Simulates an action list. `ctx` supplies `Param` references
    /// (family arguments of the enclosing register or variable).
    fn actions(&mut self, actions: &[Action], ctx: &[PlanValue], depth: u32) -> Option<()> {
        for action in actions {
            self.note_depth(depth)?;
            match (&action.target, &action.value) {
                (ActionTarget::Var(vid), value) => {
                    let v = Self::action_value(value, ctx)?;
                    self.write_var(*vid, v, &[], depth + 1)?;
                }
                (ActionTarget::Struct(sid), ActionValue::Struct(fields)) => {
                    let mut assigned = Vec::with_capacity(fields.len());
                    for (fid, fval) in fields {
                        assigned.push((*fid, Self::action_value(fval, ctx)?));
                    }
                    self.write_struct_fields(*sid, &assigned, depth + 1)?;
                }
                (ActionTarget::Struct(_), _) => return None,
            }
        }
        Some(())
    }

    /// An action value as a plan value, when statically known.
    fn action_value(value: &ActionValue, ctx: &[PlanValue]) -> Option<PlanValue> {
        match value {
            ActionValue::Const(c) => Some(PlanValue::Const(*c)),
            ActionValue::Any => Some(PlanValue::Const(0)),
            // The general path defaults missing params to 0.
            ActionValue::Param(i) => Some(ctx.get(*i).copied().unwrap_or(PlanValue::Const(0))),
            ActionValue::Var(_) | ActionValue::Struct(_) => None,
        }
    }

    /// Simulates a struct-valued action: assigned field bits stored
    /// up-front by the general path, flushed register by register here.
    fn write_struct_fields(
        &mut self,
        sid: StructId,
        assigned: &[(VarId, PlanValue)],
        depth: u32,
    ) -> Option<()> {
        self.note_depth(depth)?;
        // Mem-cell fields are stored directly (no flush involved).
        for &(fid, v) in assigned {
            let f = &self.vars[fid.0 as usize];
            if !f.params.is_empty() {
                return None;
            }
            if let Some(cell) = f.mem_cell {
                self.emit(PlanStep::SetCell { cell, value: v })?;
            }
        }
        self.flush_struct(sid, assigned, depth)
    }

    /// Simulates `write_struct` reached through an action; nested
    /// conditional orders keep the general path (see [`Self::write_var`]).
    fn flush_struct(
        &mut self,
        sid: StructId,
        assigned: &[(VarId, PlanValue)],
        depth: u32,
    ) -> Option<()> {
        let order = regs_of(&self.structs[sid.0 as usize].write_order)?;
        self.flush_struct_ordered(sid, assigned, &order, depth)
    }

    /// Simulates `write_struct` over a pre-flattened register order:
    /// compose every register from the cache (plus the `assigned` field
    /// inserts) and write it, then run field-level set actions.
    fn flush_struct_ordered(
        &mut self,
        sid: StructId,
        assigned: &[(VarId, PlanValue)],
        order: &[RegId],
        depth: u32,
    ) -> Option<()> {
        self.note_depth(depth)?;
        let st = &self.structs[sid.0 as usize];
        let fields = st.fields.clone();
        // The general path stores every assigned field's bits into its
        // registers' caches up front; the fused formula only inserts
        // them at registers the order actually flushes, so each
        // assigned field must be fully covered by the order.
        for &(fid, _) in assigned {
            let f = &self.vars[fid.0 as usize];
            if f.mem_cell.is_none() && !f.segs.iter().all(|s| order.contains(&s.reg)) {
                return None;
            }
        }
        // Assigned register-backed bits are inserted at each register's
        // write step; guard the pending slots (store/compose inversion,
        // as in `write_var`).
        let guard_start = self.guarded.len();
        for &rid in order {
            let slot = self.slot_for(rid, &[])?;
            self.guarded.push(Some(slot));
        }
        for (k, &rid) in order.iter().enumerate() {
            let reg = &self.regs[rid.0 as usize];
            let mut clear = 0u64;
            let mut const_or = 0u64;
            let mut segs = Vec::new();
            for &(fid, v) in assigned {
                for s in &self.vars[fid.0 as usize].segs {
                    if s.reg == rid {
                        clear |= s.seg.reg_mask();
                        match v {
                            PlanValue::Const(c) => const_or |= s.seg.insert(c),
                            v => segs.push(WriteSeg { seg: s.seg, value: v }),
                        }
                    }
                }
            }
            let compose = WriteCompose {
                keep_and: !clear,
                const_or,
                segs,
                out_and: reg.and_mask,
                out_or: reg.or_mask,
            };
            // The general path enters `write_register` at depth + 1.
            self.write_reg(rid, &[], compose, Some(guard_start + k), depth + 1)?;
        }
        self.guarded.truncate(guard_start);
        for fid in fields {
            let set = self.vars[fid.0 as usize].set.clone();
            self.actions(&set, &[], depth + 1)?;
        }
        Some(())
    }

    /// Simulates `read_struct` over a pre-flattened register order:
    /// every register once.
    fn read_struct_ordered(&mut self, order: &[RegId]) -> Option<()> {
        for &rid in order {
            self.read_reg(rid, &[], 0)?;
        }
        Some(())
    }
}

/// The family args of one segment as plan values.
fn chunk_args(args: &[ChunkArg], var_args: &[PlanValue]) -> Vec<PlanValue> {
    args.iter()
        .map(|a| match a {
            ChunkArg::Const(c) => PlanValue::Const(*c),
            ChunkArg::Param(i) => var_args[*i],
        })
        .collect()
}

/// Collects the variables a serialization order's conditionals test.
fn collect_cond_vars(steps: &[SerStep], out: &mut Vec<VarId>) {
    for s in steps {
        if let SerStep::If { cond, then, els } = s {
            cond_vars(cond, out);
            collect_cond_vars(then, out);
            collect_cond_vars(els, out);
        }
    }
}

fn cond_vars(cond: &CondSem, out: &mut Vec<VarId>) {
    match cond {
        CondSem::Cmp { var, .. } => {
            if !out.contains(var) {
                out.push(*var);
            }
        }
        CondSem::And(a, b) | CondSem::Or(a, b) => {
            cond_vars(a, out);
            cond_vars(b, out);
        }
        CondSem::Not(a) => cond_vars(a, out),
    }
}

/// Evaluates a guard condition under a static assignment of raw values
/// to the tested variables (every tested variable is assigned).
fn eval_cond_static(cond: &CondSem, assign: &[(VarId, u64)]) -> bool {
    match cond {
        CondSem::Cmp { var, eq, value } => {
            let v = assign.iter().find(|(id, _)| id == var).map(|&(_, v)| v).unwrap_or(0);
            (v == *value) == *eq
        }
        CondSem::And(a, b) => eval_cond_static(a, assign) && eval_cond_static(b, assign),
        CondSem::Or(a, b) => eval_cond_static(a, assign) || eval_cond_static(b, assign),
        CondSem::Not(a) => !eval_cond_static(a, assign),
    }
}

/// Flattens an order to register ids under a static assignment (every
/// conditional is decidable).
fn flatten_order(steps: &[SerStep], assign: &[(VarId, u64)], out: &mut Vec<RegId>) {
    for s in steps {
        match s {
            SerStep::Reg(r) => out.push(*r),
            SerStep::If { cond, then, els } => {
                if eval_cond_static(cond, assign) {
                    flatten_order(then, assign, out);
                } else {
                    flatten_order(els, assign, out);
                }
            }
        }
    }
}

/// The fixed cache slot a tested variable's segment resolves to, when
/// statically known: a concrete register, or a family instance with
/// constant arguments inside an indexed slot range.
fn fixed_slot(regs: &[RegIr], seg: &VarSeg) -> Option<usize> {
    let reg = &regs[seg.reg.0 as usize];
    if let Some(s) = reg.slot {
        return Some(s);
    }
    let args: Option<Vec<u64>> = seg
        .args
        .iter()
        .map(|a| match a {
            ChunkArg::Const(c) => Some(*c),
            ChunkArg::Param(_) => None,
        })
        .collect();
    reg.family_slots.as_ref()?.slot_of(&args?)
}

/// Whether any register bit of `a` is also a register bit of `b`.
fn var_bits_overlap(a: &VarIr, b: &VarIr) -> bool {
    a.segs.iter().any(|sa| {
        b.segs.iter().any(|sb| sa.reg == sb.reg && sa.seg.reg_mask() & sb.seg.reg_mask() != 0)
    })
}

/// Guard-splits a serialization order: one `(guards, flattened
/// register order)` pair per combination of raw cache values of the
/// variables its conditionals test, in mixed-radix order (first tested
/// variable most significant, matching the selector's indexing), plus
/// the [`SelectorDim`] list that picks the combination at run time.
/// Unconditional orders yield a single unguarded pair and an empty
/// selector.
///
/// `written` names the variable whose new bits the general path stores
/// into the cache *before* evaluating the conditions (a variable
/// write). An order testing that variable — or any bit it owns —
/// cannot be guarded against the plan's entry state, so it keeps the
/// general path. Other bail-outs: memory-cell or parameterized tested
/// variables, segments without a fixed slot, and guard domains past
/// [`GUARD_DOMAIN_CAP`].
#[allow(clippy::type_complexity)]
fn guard_split(
    order: &[SerStep],
    vars: &[VarIr],
    regs: &[RegIr],
    written: Option<VarId>,
) -> Option<(Vec<SelectorDim>, Vec<(Vec<PlanGuard>, Vec<RegId>)>)> {
    let mut tested: Vec<VarId> = Vec::new();
    collect_cond_vars(order, &mut tested);
    if tested.is_empty() {
        let mut flat = Vec::new();
        flatten_order(order, &[], &mut flat);
        return Some((Vec::new(), vec![(Vec::new(), flat)]));
    }
    let mut domain: u128 = 1;
    let mut selector = Vec::with_capacity(tested.len());
    for &tv in &tested {
        let var = &vars[tv.0 as usize];
        // The general interpreter evaluates conditions by assembling
        // the tested variable from the cache with no arguments; only
        // plain register-backed variables reproduce as slot guards.
        if var.mem_cell.is_some() || !var.params.is_empty() {
            return None;
        }
        if let Some(w) = written {
            if w == tv || var_bits_overlap(&vars[w.0 as usize], var) {
                return None;
            }
        }
        if var.width >= 64 {
            return None;
        }
        domain = domain.checked_mul(1u128 << var.width)?;
        if domain > GUARD_DOMAIN_CAP {
            return None;
        }
        let segs: Option<Vec<(usize, FieldSeg)>> =
            var.segs.iter().map(|s| fixed_slot(regs, s).map(|slot| (slot, s.seg))).collect();
        selector.push(SelectorDim { segs: segs?, radix: 1usize << var.width });
    }
    // Enumerate every combination (mixed radix, last variable fastest);
    // each yields per-segment equality guards and a flattened order.
    let mut variants = Vec::with_capacity(domain as usize);
    let mut assign: Vec<(VarId, u64)> = tested.iter().map(|&tv| (tv, 0)).collect();
    loop {
        let mut guards = Vec::new();
        for &(tv, v) in &assign {
            for seg in &vars[tv.0 as usize].segs {
                guards.push(PlanGuard {
                    slot: fixed_slot(regs, seg)?,
                    mask: seg.seg.reg_mask(),
                    expected: seg.seg.insert(v),
                });
            }
        }
        let mut flat = Vec::new();
        flatten_order(order, &assign, &mut flat);
        variants.push((guards, flat));
        let mut i = assign.len();
        loop {
            if i == 0 {
                return Some((selector, variants));
            }
            i -= 1;
            let max = (1u64 << vars[assign[i].0 .0 as usize].width) - 1;
            if assign[i].1 < max {
                assign[i].1 += 1;
                break;
            }
            assign[i].1 = 0;
        }
    }
}

/// Compiles every guard-split variant through its own symbolic
/// execution, appending the straight-line steps to the shared arena.
/// Every variant must compile or the whole access keeps the general
/// path (the arena is rolled back, leaving no dead steps).
fn compile_variants(
    splits: Vec<(Vec<PlanGuard>, Vec<RegId>)>,
    vars: &[VarIr],
    regs: &[RegIr],
    structs: &[StructIr],
    params: &[FamilyParam],
    arena: &mut Vec<PlanStep>,
    mut body: impl FnMut(&mut PlanBuilder, &[RegId]) -> Option<()>,
) -> Option<(Vec<PlanVariant>, u32)> {
    let rollback = arena.len();
    let mut variants = Vec::with_capacity(splits.len());
    let mut max_depth = 0;
    for (guards, order) in splits {
        let mut b = PlanBuilder::new(vars, regs, structs, params);
        if body(&mut b, &order).is_none() {
            arena.truncate(rollback);
            return None;
        }
        max_depth = max_depth.max(b.max_depth);
        let start = arena.len() as u32;
        arena.extend(b.steps);
        variants.push(PlanVariant { guards, start, len: arena.len() as u32 - start });
    }
    Some((variants, max_depth))
}

/// Compiles the read/write plans for one variable, when the access
/// qualifies (see [`AccessPlan`]). Compiled steps land in `arena`.
fn compile_var_plans(
    vid: VarId,
    vars: &[VarIr],
    regs: &[RegIr],
    structs: &[StructIr],
    arena: &mut Vec<PlanStep>,
) -> (Option<Arc<AccessPlan>>, Option<Arc<AccessPlan>>) {
    let var = &vars[vid.0 as usize];
    if var.mem_cell.is_some() {
        return (None, None);
    }
    let args: Vec<PlanValue> = (0..var.params.len()).map(PlanValue::Arg).collect();
    let read = if var.readable {
        guard_split(&var.read_order, vars, regs, None).and_then(|(selector, splits)| {
            let b = PlanBuilder::new(vars, regs, structs, &var.params);
            let assemble: Option<Vec<(PlanSlot, FieldSeg)>> = var
                .segs
                .iter()
                .map(|s| b.slot_for(s.reg, &chunk_args(&s.args, &args)).map(|slot| (slot, s.seg)))
                .collect();
            let assemble = assemble?;
            compile_variants(splits, vars, regs, structs, &var.params, arena, |b, order| {
                b.read_var_ordered(vid, &args, order)
            })
            .map(|(variants, max_depth)| {
                Arc::new(AccessPlan { variants, selector, assemble, max_depth })
            })
        })
    } else {
        None
    };
    let write = if var.writable {
        guard_split(&var.write_order, vars, regs, Some(vid)).and_then(|(selector, splits)| {
            compile_variants(splits, vars, regs, structs, &var.params, arena, |b, order| {
                b.write_var_ordered(vid, PlanValue::Input, &args, order, 0)
            })
            .map(|(variants, max_depth)| {
                Arc::new(AccessPlan { variants, selector, assemble: Vec::new(), max_depth })
            })
        })
    } else {
        None
    };
    (read, write)
}

/// Compiles the read/write plans for one structure (an [`AccessPlan`]
/// with an empty assemble list — field getters use
/// [`VarIr::slot_assemble`] instead). Conditional orders guard-split:
/// the general path evaluates every condition against the cache before
/// the first access, which is exactly the state the entry guards see.
fn compile_struct_plans(
    sid: StructId,
    vars: &[VarIr],
    regs: &[RegIr],
    structs: &[StructIr],
    arena: &mut Vec<PlanStep>,
) -> (Option<Arc<AccessPlan>>, Option<Arc<AccessPlan>>) {
    let st = &structs[sid.0 as usize];
    let read = guard_split(&st.read_order, vars, regs, None).and_then(|(selector, splits)| {
        compile_variants(splits, vars, regs, structs, &[], arena, |b, order| {
            b.read_struct_ordered(order)
        })
        .map(|(variants, max_depth)| {
            Arc::new(AccessPlan { variants, selector, assemble: Vec::new(), max_depth })
        })
    });
    let write = guard_split(&st.write_order, vars, regs, None).and_then(|(selector, splits)| {
        compile_variants(splits, vars, regs, structs, &[], arena, |b, order| {
            b.flush_struct_ordered(sid, &[], order, 0)
        })
        .map(|(variants, max_depth)| {
            Arc::new(AccessPlan { variants, selector, assemble: Vec::new(), max_depth })
        })
    });
    (read, write)
}

impl DeviceIr {
    /// Looks a variable up by name (binary search over the interned
    /// name table — no hashing, no linear scan).
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.var_names
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.var_names[i].1)
    }

    /// Looks a structure up by name.
    pub fn struct_id(&self, name: &str) -> Option<StructId> {
        self.struct_names
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.struct_names[i].1)
    }

    /// Looks a register up by name.
    pub fn reg_id(&self, name: &str) -> Option<RegId> {
        self.reg_names
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.reg_names[i].1)
    }

    /// The variable for an id.
    pub fn var(&self, id: VarId) -> &VarIr {
        &self.vars[id.0 as usize]
    }

    /// The register for an id.
    pub fn reg(&self, id: RegId) -> &RegIr {
        &self.regs[id.0 as usize]
    }

    /// The structure for an id.
    pub fn strct(&self, id: StructId) -> &StructIr {
        &self.structs[id.0 as usize]
    }

    /// The arena slice holding one plan variant's steps.
    #[inline]
    pub fn variant_steps(&self, v: &PlanVariant) -> &[PlanStep] {
        &self.plan_arena[v.start as usize..(v.start + v.len) as usize]
    }

    /// The concrete register owning a flat cache slot, or `None` for
    /// slots inside a family's indexed range. This is how the stub
    /// emitters name the cache field behind a [`PlanGuard`] or an
    /// assemble entry.
    #[inline]
    pub fn slot_owner(&self, slot: usize) -> Option<RegId> {
        self.slot_owners.get(slot).copied().flatten()
    }

    /// The private variable owning a memory cell.
    #[inline]
    pub fn mem_owner(&self, cell: usize) -> Option<VarId> {
        self.mem_owners.get(cell).copied()
    }

    /// Resolves a register binding's offset for concrete family args.
    pub fn resolve_offset(&self, binding: &PortBinding, args: &[u64]) -> u64 {
        match binding.offset {
            Offset::Const(c) => c,
            Offset::Param(i) => args[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ir_for(src: &str) -> DeviceIr {
        let model = devil_sema::check_source(src, &[]).expect("spec must check");
        lower(&model)
    }

    /// The arena steps of a plan's only, unguarded variant.
    fn steps<'a>(ir: &'a DeviceIr, plan: &AccessPlan) -> &'a [PlanStep] {
        assert_eq!(plan.variants.len(), 1, "expected a straight-line plan");
        assert!(plan.variants[0].guards.is_empty(), "expected an unguarded plan");
        ir.variant_steps(&plan.variants[0])
    }

    const BUSMOUSE: &str = r#"
device logitech_busmouse (base : bit[8] port @ {0..3}) {
  register sig_reg = base @ 1 : bit[8];
  variable signature = sig_reg, volatile, write trigger : int(8);
  register cr = write base @ 3, mask '1001000*' : bit[8];
  variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };
  register interrupt_reg = write base @ 2, mask '000*0000' : bit[8];
  variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };
  register index_reg = write base @ 2, mask '1**00000' : bit[8];
  private variable index = index_reg[6..5] : int(2);
  register x_low  = read base @ 0, pre {index = 0}, mask '....****' : bit[8];
  register x_high = read base @ 0, pre {index = 1}, mask '....****' : bit[8];
  register y_low  = read base @ 0, pre {index = 2}, mask '....****' : bit[8];
  register y_high = read base @ 0, pre {index = 3}, mask '***.****' : bit[8];
  structure mouse_state = {
    variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
    variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
    variable buttons = y_high[7..5], volatile : int(3);
  };
}
"#;

    #[test]
    fn busmouse_segments() {
        let ir = ir_for(BUSMOUSE);
        let dx = ir.var(ir.var_id("dx").unwrap());
        assert_eq!(dx.width, 8);
        assert_eq!(dx.segs.len(), 2);
        // x_high[3..0] is the high nibble of dx.
        let hi = &dx.segs[0];
        assert_eq!(ir.reg(hi.reg).name, "x_high");
        assert_eq!((hi.seg.reg_hi, hi.seg.reg_lo, hi.seg.var_lo), (3, 0, 4));
        let lo = &dx.segs[1];
        assert_eq!(ir.reg(lo.reg).name, "x_low");
        assert_eq!((lo.seg.reg_hi, lo.seg.reg_lo, lo.seg.var_lo), (3, 0, 0));
    }

    #[test]
    fn busmouse_shared_register_fields() {
        let ir = ir_for(BUSMOUSE);
        // y_high carries dy's high nibble and buttons.
        let y_high = ir.reg(ir.reg_id("y_high").unwrap());
        assert_eq!(y_high.fields.len(), 2);
        assert!(y_high.volatile);
        let buttons_id = ir.var_id("buttons").unwrap();
        let btn_seg = y_high.fields.iter().find(|f| f.var == buttons_id).unwrap();
        assert_eq!((btn_seg.reg_hi, btn_seg.reg_lo, btn_seg.var_lo), (7, 5, 0));
    }

    #[test]
    fn busmouse_structure_read_order_dedups_registers() {
        let ir = ir_for(BUSMOUSE);
        let st = ir.strct(ir.struct_id("mouse_state").unwrap());
        // x_high, x_low, y_high, y_low — four distinct registers even
        // though dy and buttons share y_high.
        assert_eq!(st.read_order.len(), 4);
        let names: Vec<&str> = st
            .read_order
            .iter()
            .map(|s| match s {
                SerStep::Reg(r) => ir.reg(*r).name.as_str(),
                _ => panic!("unexpected conditional"),
            })
            .collect();
        assert_eq!(names, ["x_high", "x_low", "y_high", "y_low"]);
    }

    #[test]
    fn forced_masks_lowered() {
        let ir = ir_for(BUSMOUSE);
        let cr = ir.reg(ir.reg_id("cr").unwrap());
        assert_eq!(cr.or_mask, 0b1001_0000);
        assert_eq!(cr.and_mask, 0b1001_0001);
        let idx = ir.reg(ir.reg_id("index_reg").unwrap());
        assert_eq!(idx.or_mask, 0b1000_0000);
        assert_eq!(idx.and_mask, 0b1110_0000);
    }

    #[test]
    fn field_seg_extract_insert_inverse() {
        let seg = FieldSeg { var: VarId(0), reg_hi: 6, reg_lo: 5, var_lo: 0 };
        assert_eq!(seg.width(), 2);
        assert_eq!(seg.reg_mask(), 0b0110_0000);
        let reg_raw = 0b0100_0000u64;
        assert_eq!(seg.extract(reg_raw), 0b10);
        assert_eq!(seg.insert(0b10), 0b0100_0000);
        // extract ∘ insert = identity on in-range values.
        for v in 0..4u64 {
            assert_eq!(seg.extract(seg.insert(v)), v);
        }
    }

    #[test]
    fn serialized_variable_order_respected() {
        let ir = ir_for(
            r#"device d (data : bit[8] port @ {0..0}, ctl : bit[8] port @ {1..1}) {
                 register ff = write ctl @ 1, mask '0000000*' : bit[8];
                 private variable flip_flop = ff[0] : bool;
                 register cnt_low = data @ 0, pre {flip_flop = *} : bit[8];
                 register cnt_high = data @ 0 : bit[8];
                 variable x = cnt_high # cnt_low : int(16) serialized as {cnt_low; cnt_high;};
               }"#,
        );
        let x = ir.var(ir.var_id("x").unwrap());
        let names: Vec<&str> = x
            .read_order
            .iter()
            .map(|s| match s {
                SerStep::Reg(r) => ir.reg(*r).name.as_str(),
                _ => panic!(),
            })
            .collect();
        // Default order would be cnt_high (MSB) first; the plan says
        // cnt_low first.
        assert_eq!(names, ["cnt_low", "cnt_high"]);
        // Segment map still places cnt_high at the top byte.
        assert_eq!(x.segs[0].seg.var_lo, 8);
        assert_eq!(x.segs[1].seg.var_lo, 0);
    }

    #[test]
    fn memory_variables_get_cells() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable xm : bool;
                 register control = base @ 0, set {xm = false} : bit[8];
                 variable IA = control : int{0..31};
               }"#,
        );
        assert_eq!(ir.mem_cells, 1);
        let xm = ir.var(ir.var_id("xm").unwrap());
        assert_eq!(xm.mem_cell, Some(0));
        assert!(xm.readable && xm.writable);
        let ia = ir.var(ir.var_id("IA").unwrap());
        assert_eq!(ia.mem_cell, None);
    }

    #[test]
    fn directions_lowered() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register ro = read base @ 0 : bit[8];
                 register wo = write base @ 1 : bit[8];
                 variable vr = ro, volatile : int(8);
                 variable vw = wo : int(8);
               }"#,
        );
        let vr = ir.var(ir.var_id("vr").unwrap());
        assert!(vr.readable && !vr.writable);
        let vw = ir.var(ir.var_id("vw").unwrap());
        assert!(!vw.readable && vw.writable);
    }

    #[test]
    fn multi_range_atom_orders_msb_first() {
        // XA = r[2,7..4]: bit 2 is the variable's MSB (bit 4), then
        // bits 7..4 follow.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0, mask '****.*.*' : bit[8];
                 variable XA = r[2,7..4] : int(5);
                 variable other = r[0] : bool;
               }"#,
        );
        let xa = ir.var(ir.var_id("XA").unwrap());
        assert_eq!(xa.segs.len(), 2);
        assert_eq!(
            (xa.segs[0].seg.reg_hi, xa.segs[0].seg.reg_lo, xa.segs[0].seg.var_lo),
            (2, 2, 4)
        );
        assert_eq!(
            (xa.segs[1].seg.reg_hi, xa.segs[1].seg.reg_lo, xa.segs[1].seg.var_lo),
            (7, 4, 0)
        );
    }

    #[test]
    fn plans_compiled_for_simple_variables() {
        let ir = ir_for(BUSMOUSE);
        // `config` lives alone on `cr`, which has no actions.
        let config = ir.var(ir.var_id("config").unwrap());
        assert!(config.read_plan.is_none(), "cr is write-only");
        let plan = config.write_plan.as_ref().expect("cr write plan");
        let wsteps = steps(&ir, plan);
        assert_eq!(wsteps.len(), 1);
        let PlanStep::Write(step, compose) = &wsteps[0] else { panic!("write step") };
        assert!(matches!(step.offset, PlanOffset::Const(3)));
        assert_eq!(compose.out_or, 0b1001_0000);
        assert_eq!(compose.out_and, 0b1001_0001);
        assert_eq!(compose.segs.len(), 1);
        assert_eq!(compose.segs[0].value, PlanValue::Input);
        // `signature` reads a plain register: read plan with one step.
        let sig = ir.var(ir.var_id("signature").unwrap());
        let rp = sig.read_plan.as_ref().expect("sig_reg read plan");
        let rsteps = steps(&ir, rp);
        assert_eq!(rsteps.len(), 1);
        assert!(
            matches!(&rsteps[0], PlanStep::Read(a) if matches!(a.offset, PlanOffset::Const(1)))
        );
        assert_eq!(rp.assemble.len(), 1);
    }

    #[test]
    fn plans_fold_index_register_pre_actions() {
        // dx is backed by registers with `index = N` pre-actions; the
        // symbolic executor folds those into constant index writes.
        let ir = ir_for(BUSMOUSE);
        let dx = ir.var(ir.var_id("dx").unwrap());
        let rp = dx.read_plan.as_ref().expect("dx read plan folds pre-actions");
        let rsteps = steps(&ir, rp);
        // write index=1, read x_high, write index=0, read x_low.
        assert_eq!(rsteps.len(), 4);
        let idx_reg = ir.reg_id("index_reg").unwrap();
        let PlanStep::Write(a0, c0) = &rsteps[0] else { panic!("index write first") };
        assert_eq!(a0.reg, idx_reg);
        // index=1 folded: bits 6..5 get 0b01.
        assert_eq!(c0.const_or, 0b0010_0000);
        assert!(c0.segs.is_empty(), "constant fully folded");
        assert!(matches!(&rsteps[1], PlanStep::Read(a) if ir.reg(a.reg).name == "x_high"));
        let PlanStep::Write(_, c2) = &rsteps[2] else { panic!() };
        assert_eq!(c2.const_or, 0, "index=0 folds to zero bits");
        assert!(matches!(&rsteps[3], PlanStep::Read(a) if ir.reg(a.reg).name == "x_low"));
        // dx is read-only (its registers are read-only): no write plan.
        assert!(dx.write_plan.is_none());
    }

    #[test]
    fn struct_plans_flatten_the_figure_3_loop() {
        let ir = ir_for(BUSMOUSE);
        let st = ir.strct(ir.struct_id("mouse_state").unwrap());
        let plan = st.read_plan.as_ref().expect("mouse_state read plan");
        let rsteps = steps(&ir, plan);
        // 4 index writes + 4 data reads, interleaved.
        assert_eq!(rsteps.len(), 8);
        let kinds: Vec<bool> = rsteps.iter().map(|s| matches!(s, PlanStep::Write(..))).collect();
        assert_eq!(kinds, [true, false, true, false, true, false, true, false]);
        // Registers are read-only: no write plan for the structure.
        assert!(st.write_plan.is_none());
        // Fields assemble from fixed slots without name resolution.
        let dx = ir.var(ir.var_id("dx").unwrap());
        assert_eq!(dx.slot_assemble.as_ref().map(Vec::len), Some(2));
    }

    #[test]
    fn plans_fold_trigger_neutrals() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register cmd = base @ 0 : bit[8];
                 variable st = cmd[1..0], write trigger except NEUTRAL
                   : { NEUTRAL <=> '11', START <=> '01', STOP <=> '10', NOP <=> '00' };
                 variable page = cmd[7..2] : int(6);
               }"#,
        );
        let page = ir.var(ir.var_id("page").unwrap());
        let plan = page.write_plan.as_ref().expect("page write plan");
        let PlanStep::Write(_, c) = &steps(&ir, plan)[0] else { panic!() };
        // st's bits are cleared from the cached value and replaced by
        // the neutral pattern '11'.
        assert_eq!(c.keep_and & 0b11, 0, "st bits cleared");
        assert_eq!(c.const_or, 0b11, "neutral folded in");
        // st's own plan keeps page's cached bits.
        let st = ir.var(ir.var_id("st").unwrap());
        let sp = st.write_plan.as_ref().expect("st write plan");
        let PlanStep::Write(_, sc) = &steps(&ir, sp)[0] else { panic!() };
        assert_eq!(sc.keep_and & 0b1111_1100, 0b1111_1100);
        assert_eq!(sc.const_or, 0);
    }

    #[test]
    fn family_registers_get_indexed_slot_ranges() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..4}) {
                 register plain = base @ 4 : bit[8];
                 variable v = plain : int(8);
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable f(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
        // One slot for `plain` plus four for the family instances.
        assert_eq!(ir.cache_slots, 5);
        assert!(ir.reg(ir.reg_id("plain").unwrap()).slot.is_some());
        let r = ir.reg(ir.reg_id("r").unwrap());
        assert!(r.slot.is_none());
        let fam = r.family_slots.as_ref().expect("indexed family slots");
        assert_eq!(fam.count, 4);
        assert_eq!(fam.slot_of(&[0]), Some(fam.base));
        assert_eq!(fam.slot_of(&[3]), Some(fam.base + 3));
        assert_eq!(fam.slot_of(&[4]), None, "outside the domain");
    }

    #[test]
    fn sparse_family_domains_index_densely() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..17, 25}) {
                 register x(i : int{0..17, 25}) = base @ i : bit[8];
                 variable xv(i : int{0..17, 25}) = x(i), volatile : int(8);
               }"#,
        );
        let x = ir.reg(ir.reg_id("x").unwrap());
        let fam = x.family_slots.as_ref().unwrap();
        assert_eq!(fam.count, 19);
        assert_eq!(fam.slot_of(&[17]), Some(fam.base + 17));
        assert_eq!(fam.slot_of(&[25]), Some(fam.base + 18), "sparse value packs densely");
        assert_eq!(fam.slot_of(&[20]), None);
    }

    #[test]
    fn family_variables_compile_parameterized_plans() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..3}) {
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable v(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
        let v = ir.var(ir.var_id("v").unwrap());
        let rp = v.read_plan.as_ref().expect("family read plan");
        let rsteps = steps(&ir, rp);
        assert_eq!(rsteps.len(), 1);
        let PlanStep::Read(a) = &rsteps[0] else { panic!() };
        assert!(matches!(a.offset, PlanOffset::Arg(0)));
        let PlanSlot::Indexed { dims, .. } = &a.slot else { panic!("indexed slot") };
        assert_eq!(dims.len(), 1);
        assert_eq!(rp.assemble.len(), 1);
        let wp = v.write_plan.as_ref().expect("family write plan");
        assert!(matches!(
            &steps(&ir, wp)[0],
            PlanStep::Write(a, _) if matches!(a.offset, PlanOffset::Arg(0))
        ));
    }

    #[test]
    fn indexed_pre_actions_fold_into_plans() {
        // CS4236B-style: the indexed-register automaton (control write
        // with the parameter value, set-action on a memory cell, data
        // read) flattens to three straight-line steps.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 private variable xm : bool;
                 register control = base @ 0, mask '000*****', set {xm = false} : bit[8];
                 variable IA = control[4..0] : int{0..31};
                 register I(i : int{0..31}) = base @ 1, pre {IA = i} : bit[8];
                 variable ID(i : int{0..31}) = I(i), volatile : int(8);
               }"#,
        );
        let id = ir.var(ir.var_id("ID").unwrap());
        let rp = id.read_plan.as_ref().expect("ID read plan");
        let rsteps = steps(&ir, rp);
        assert_eq!(rsteps.len(), 3);
        let PlanStep::Write(a, c) = &rsteps[0] else { panic!("control write first") };
        assert_eq!(ir.reg(a.reg).name, "control");
        assert_eq!(c.segs.len(), 1);
        assert_eq!(c.segs[0].value, PlanValue::Arg(0), "IA gets the family argument");
        assert!(matches!(&rsteps[1], PlanStep::SetCell { cell: 0, value: PlanValue::Const(0) }));
        assert!(matches!(&rsteps[2], PlanStep::Read(a) if ir.reg(a.reg).name == "I"));
    }

    #[test]
    fn conditional_struct_writes_guard_split_into_variants() {
        // The 8259A shape: `if (sngl == CASCADED) icw3` splits the
        // write into one straight-line variant per tested cache value,
        // selected by a slot guard on icw1's bit 0.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register icw1 = write base @ 0 : bit[8];
                 register icw3 = write base @ 1 : bit[8];
                 structure init = {
                   variable sngl = icw1[0] : { SINGLE => '1', CASCADED => '0' };
                   variable rest = icw1[7..1] : int(7);
                   variable v3 = icw3 : int(8);
                 } serialized as { icw1; if (sngl == CASCADED) icw3; };
               }"#,
        );
        let st = ir.strct(ir.struct_id("init").unwrap());
        // Registers are write-only, so the read direction has no plan
        // in any variant.
        assert!(st.read_plan.is_none());
        let wp = st.write_plan.as_ref().expect("conditional write must guard-split");
        assert_eq!(wp.variants.len(), 2, "one variant per sngl cache value");
        let icw1_slot = ir.reg(ir.reg_id("icw1").unwrap()).slot.unwrap();
        // sngl == 0 (CASCADED): guard expects bit 0 clear, icw3 written.
        let cascaded = &wp.variants[0];
        assert_eq!(cascaded.guards, vec![PlanGuard { slot: icw1_slot, mask: 1, expected: 0 }]);
        assert_eq!(ir.variant_steps(cascaded).len(), 2, "icw1 + icw3");
        // sngl == 1 (SINGLE): icw3 skipped.
        let single = &wp.variants[1];
        assert_eq!(single.guards, vec![PlanGuard { slot: icw1_slot, mask: 1, expected: 1 }]);
        assert_eq!(ir.variant_steps(single).len(), 1, "icw1 only");
        assert!(matches!(
            &ir.variant_steps(single)[0],
            PlanStep::Write(a, _) if a.reg == ir.reg_id("icw1").unwrap()
        ));
    }

    #[test]
    fn two_conditionals_enumerate_the_cross_product() {
        // The full 8259A shape: sngl and ic4 (1 bit each) give 2×2
        // variants with 5/4/4/3 steps.
        let ir = ir_for(include_str!("../../../specs/pic8259.dil"));
        let st = ir.strct(ir.struct_id("init").unwrap());
        let wp = st.write_plan.as_ref().expect("pic8259 init must guard-split");
        assert_eq!(wp.variants.len(), 4);
        let lens: Vec<u32> = wp.variants.iter().map(|v| v.len).collect();
        let mut sorted = lens.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, [3, 4, 4, 5], "icw3/icw4 skipped per combination: {lens:?}");
        // Both guards test icw1's flat slot.
        let icw1_slot = ir.reg(ir.reg_id("icw1").unwrap()).slot.unwrap();
        for v in &wp.variants {
            assert_eq!(v.guards.len(), 2);
            assert!(v.guards.iter().all(|g| g.slot == icw1_slot));
        }
        // The fully-populated variant (CASCADED + IC4) writes all five
        // registers in spec order.
        let full = wp.variants.iter().find(|v| v.len == 5).unwrap();
        let names: Vec<&str> = ir
            .variant_steps(full)
            .iter()
            .map(|s| match s {
                PlanStep::Write(a, _) => ir.reg(a.reg).name.as_str(),
                _ => panic!("flush is all writes"),
            })
            .collect();
        assert_eq!(names, ["icw1", "icw2", "icw3", "icw4", "ocw1"]);
        // Indexed selection: every cache state picks the variant whose
        // guards hold — no scan over the variant table.
        assert_eq!(wp.selector.len(), 2);
        let mut slots = vec![0u64; ir.cache_slots];
        let mut valid = vec![false; ir.cache_slots];
        for raw in 0u64..4 {
            slots[icw1_slot] = raw;
            valid[icw1_slot] = true;
            let v = wp.select_variant(&slots, &valid).expect("selection is total");
            assert!(v.guards.iter().all(|g| g.holds(&slots, &valid)), "raw {raw:#b}");
        }
        // Uncached slots read as 0, exactly the general path's default:
        // sngl=CASCADED (icw3 written), ic4=NO (icw4 skipped).
        valid[icw1_slot] = false;
        assert_eq!(wp.select_variant(&slots, &valid).unwrap().len, 4);
    }

    #[test]
    fn nested_conditional_orders_keep_the_general_path() {
        // `data`'s pre-action writes the struct, whose order is
        // conditional: the condition would be evaluated mid-access, so
        // the reading variable must not plan-compile.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..2}) {
                 register a = write base @ 0 : bit[8];
                 register c = write base @ 1 : bit[8];
                 structure s = {
                   variable sel = a[0] : bool;
                   variable rest = a[7..1] : int(7);
                   variable v = c : int(8);
                 } serialized as { a; if (sel == true) c; };
                 register data = read base @ 2, pre {s = {sel => true; rest => 1; v => 2}} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        let payload = ir.var(ir.var_id("payload").unwrap());
        assert!(payload.read_plan.is_none(), "nested conditional must not plan-compile");
        // The struct's own top-level write still guard-splits.
        let st = ir.strct(ir.struct_id("s").unwrap());
        assert!(st.write_plan.is_some());
    }

    #[test]
    fn guard_domains_past_the_cap_keep_the_general_path() {
        // The tested variable is 13 bits wide: 2^13 variants exceed the
        // 4096 guard-domain cap, so the order keeps the general path.
        let ir = ir_for(
            r#"device d (base : bit[16] port @ {0..1}) {
                 register a = write base @ 0 : bit[16];
                 register c = write base @ 1 : bit[16];
                 structure s = {
                   variable wide = a[12..0] : int(13);
                   variable rest = a[15..13] : int(3);
                   variable v = c : int(16);
                 } serialized as { a; if (wide == 5) c; };
               }"#,
        );
        let st = ir.strct(ir.struct_id("s").unwrap());
        assert!(st.write_plan.is_none(), "13-bit guard domain must not split");
        // A 12-bit tested field (4096 == the cap) still splits.
        let ir2 = ir_for(
            r#"device d (base : bit[16] port @ {0..1}) {
                 register a = write base @ 0 : bit[16];
                 register c = write base @ 1 : bit[16];
                 structure s = {
                   variable wide = a[11..0] : int(12);
                   variable rest = a[15..12] : int(4);
                   variable v = c : int(16);
                 } serialized as { a; if (wide == 5) c; };
               }"#,
        );
        let st2 = ir2.strct(ir2.struct_id("s").unwrap());
        let wp = st2.write_plan.as_ref().expect("12-bit domain fits the cap");
        assert_eq!(wp.variants.len(), 4096);
    }

    #[test]
    fn variants_share_one_contiguous_arena() {
        let ir = ir_for(BUSMOUSE);
        assert!(!ir.plan_arena.is_empty());
        // Every plan range lies inside the arena, and variants of one
        // plan are laid out back to back.
        let mut plans: Vec<&AccessPlan> = Vec::new();
        for v in &ir.vars {
            plans.extend(v.read_plan.as_deref());
            plans.extend(v.write_plan.as_deref());
        }
        for s in &ir.structs {
            plans.extend(s.read_plan.as_deref());
            plans.extend(s.write_plan.as_deref());
        }
        assert!(!plans.is_empty());
        for plan in plans {
            for pair in plan.variants.windows(2) {
                assert_eq!(pair[0].start + pair[0].len, pair[1].start, "variants contiguous");
            }
            for v in &plan.variants {
                assert!((v.start + v.len) as usize <= ir.plan_arena.len());
            }
        }
    }

    #[test]
    fn no_plans_for_memory_tested_conditions_or_dynamic_values() {
        // Memory variables need no plan.
        let ir2 = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable xm : bool;
                 register control = base @ 0, set {xm = false} : bit[8];
                 variable IA = control : int{0..31};
               }"#,
        );
        let xm = ir2.var(ir2.var_id("xm").unwrap());
        assert!(xm.read_plan.is_none() && xm.write_plan.is_none());
        // IA's set-action on the memory cell folds into its plans.
        let ia = ir2.var(ir2.var_id("IA").unwrap());
        let rp = ia.read_plan.as_ref().expect("IA read plan");
        let rsteps = steps(&ir2, rp);
        assert_eq!(rsteps.len(), 2);
        assert!(matches!(&rsteps[1], PlanStep::SetCell { cell: 0, value: PlanValue::Const(0) }));
    }

    #[test]
    fn struct_valued_pre_actions_fold() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register idx = write base @ 0, mask '000***0*' : bit[8];
                 structure XS = {
                   variable XA = idx[4..2] : int(3);
                   variable XRAE = idx[0], write trigger for true : bool;
                 };
                 register data = base @ 1, pre {XS = {XA => 5; XRAE => true}} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        let payload = ir.var(ir.var_id("payload").unwrap());
        let rp = payload.read_plan.as_ref().expect("payload read plan");
        let rsteps = steps(&ir, rp);
        // idx flush + data read.
        assert_eq!(rsteps.len(), 2);
        let PlanStep::Write(a, c) = &rsteps[0] else { panic!() };
        assert_eq!(ir.reg(a.reg).name, "idx");
        // XA=5 (bits 4..2) and XRAE=1 (bit 0) folded to constants.
        assert_eq!(c.const_or, 0b0001_0101);
        assert!(c.segs.is_empty());
    }

    #[test]
    fn struct_actions_with_partial_write_orders_do_not_fold() {
        // The struct's serialized-as order flushes only `a`, but the
        // action assigns `fb` on register `bq`: the general path still
        // stores fb's bits into bq's cache, which a straight-line plan
        // cannot reproduce — the access must keep the general path.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..2}) {
                 register a = write base @ 0 : bit[8];
                 register bq = write base @ 1, mask '****....' : bit[8];
                 structure s = {
                   variable fa = a : int(8);
                   variable fb = bq[7..4] : int(4);
                 } serialized as { a; };
                 register data = read base @ 2, pre {s = {fa => 3; fb => 7}} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        let payload = ir.var(ir.var_id("payload").unwrap());
        assert!(payload.read_plan.is_none(), "partial flush order must not plan-compile");
    }

    #[test]
    fn plans_carry_the_general_paths_depth_accounting() {
        let ir = ir_for(BUSMOUSE);
        // config write: one register, no actions. The general path
        // enters write_register at depth 1.
        let config = ir.var(ir.var_id("config").unwrap());
        assert_eq!(config.write_plan.as_ref().unwrap().max_depth, 1);
        // dx read folds `index = N` pre-actions: read_register at 0,
        // run_actions at 1, write_id_depth(index) at 2, its
        // write_register at 3.
        let dx = ir.var(ir.var_id("dx").unwrap());
        assert_eq!(dx.read_plan.as_ref().unwrap().max_depth, 3);
    }

    #[test]
    fn interned_lookup_matches_linear_scan() {
        let ir = ir_for(BUSMOUSE);
        for (i, v) in ir.vars.iter().enumerate() {
            assert_eq!(ir.var_id(&v.name), Some(VarId(i as u32)), "{}", v.name);
        }
        for (i, r) in ir.regs.iter().enumerate() {
            assert_eq!(ir.reg_id(&r.name), Some(RegId(i as u32)), "{}", r.name);
        }
        assert_eq!(ir.var_id("nonexistent"), None);
        assert_eq!(ir.struct_id("mouse_state"), Some(StructId(0)));
    }

    #[test]
    fn mem_cell_fields_have_no_slot_assemble() {
        // Regression: a private (memory-cell) structure field used to
        // lower with `slot_assemble = Some([])`, sending the runtime's
        // cached getter down the register-assemble path where it
        // returned 0 instead of the cell value.
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = base @ 0, set {pm = true} : bit[8];
                 structure s = {
                   private variable pm : bool;
                   variable fa = a : int(8);
                 };
               }"#,
        );
        let pm = ir.var(ir.var_id("pm").unwrap());
        assert!(pm.mem_cell.is_some());
        assert!(pm.slot_assemble.is_none(), "mem cells must not fake a register assemble");
        let fa = ir.var(ir.var_id("fa").unwrap());
        assert!(fa.slot_assemble.is_some());
    }

    #[test]
    fn slot_and_cell_owners_invert_the_layout() {
        let ir = ir_for(BUSMOUSE);
        for (ri, r) in ir.regs.iter().enumerate() {
            let slot = r.slot.expect("busmouse registers are concrete");
            assert_eq!(ir.slot_owner(slot), Some(RegId(ri as u32)), "{}", r.name);
        }
        assert_eq!(ir.slot_owner(ir.cache_slots), None);
        let ir2 = ir_for(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable xm : bool;
                 register control = base @ 0, set {xm = false} : bit[8];
                 variable IA = control : int{0..31};
               }"#,
        );
        assert_eq!(ir2.mem_owner(0), Some(ir2.var_id("xm").unwrap()));
        assert_eq!(ir2.mem_owner(1), None);
        // Family ranges own no named slot.
        let ir3 = ir_for(
            r#"device d (base : bit[8] port @ {0..3}) {
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable v(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
        let fam = ir3.reg(ir3.reg_id("r").unwrap()).family_slots.as_ref().unwrap();
        assert_eq!(ir3.slot_owner(fam.base), None);
    }

    #[test]
    fn family_offsets_resolve() {
        let ir = ir_for(
            r#"device d (base : bit[8] port @ {0..3}) {
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable v(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
        let r = ir.reg(ir.reg_id("r").unwrap());
        let binding = r.read.as_ref().unwrap();
        assert_eq!(ir.resolve_offset(binding, &[2]), 2);
    }
}
