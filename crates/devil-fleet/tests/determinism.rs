//! The fleet determinism gate.
//!
//! A sharded fleet must be a pure reorganization of work: merged
//! ledger totals, per-instance final ledgers and interpreter
//! snapshots, plan-dispatch counters, and unit counts are exactly
//! equal to a single-threaded replay, for any shard count. Latency
//! percentiles are excluded — they measure queueing, which depends on
//! sharding by design.

use devil_fleet::{run_fleet_with, FleetConfig, Mix, SharedIrs, WorkloadKind};
use hwsim::mmr::leaf_hash;
use hwsim::Mmr;
use std::collections::HashSet;

fn cfg(mix: Mix, shards: usize, instances: usize) -> FleetConfig {
    let mut c = FleetConfig::new(mix);
    c.shards = shards;
    c.instances = instances;
    c.units_per_instance = 12;
    c
}

#[test]
fn sharded_fleet_replays_single_threaded_exactly() {
    let irs = SharedIrs::compile();
    let single = run_fleet_with(&cfg(Mix::all_specs(), 1, 32), &irs);
    for shards in [2, 4, 7] {
        let sharded = run_fleet_with(&cfg(Mix::all_specs(), shards, 32), &irs);
        sharded.assert_replay_equivalent(&single);
    }
}

#[test]
fn every_mix_is_shard_count_independent() {
    let irs = SharedIrs::compile();
    for mix in [Mix::interactive(), Mix::storage(), Mix::comms()] {
        let single = run_fleet_with(&cfg(mix, 1, 24), &irs);
        let sharded = run_fleet_with(&cfg(mix, 3, 24), &irs);
        sharded.assert_replay_equivalent(&single);
    }
}

#[test]
fn same_config_is_bit_identical_including_latencies() {
    let irs = SharedIrs::compile();
    let a = run_fleet_with(&cfg(Mix::all_specs(), 2, 24), &irs);
    let b = run_fleet_with(&cfg(Mix::all_specs(), 2, 24), &irs);
    a.assert_replay_equivalent(&b);
    // Same shard count: even the queueing-dependent numbers replay.
    assert_eq!(a.sim_makespan_ns, b.sim_makespan_ns);
    assert_eq!((a.p50_ns, a.p99_ns, a.p999_ns), (b.p50_ns, b.p99_ns, b.p999_ns));
}

#[test]
fn fleet_wide_general_interpreter_count_is_zero() {
    let irs = SharedIrs::compile();
    let r = run_fleet_with(&cfg(Mix::all_specs(), 2, 64), &irs);
    // The coverage mix must actually exercise all eight specs.
    let kinds: HashSet<WorkloadKind> = r.finals.iter().map(|f| f.kind).collect();
    assert_eq!(kinds.len(), WorkloadKind::ALL.len(), "all workload kinds spawned: {kinds:?}");
    assert!(r.stats.straight > 0, "fleet must dispatch on straight-line plans");
    assert!(r.stats.guarded > 0, "fleet must dispatch on guard-split variants");
    assert!(r.stats.fused > 0, "fleet must dispatch on fused superplans");
    assert_eq!(r.stats.general, 0, "no general-interpreter fallback anywhere: {:?}", r.stats);
    assert_eq!(r.units, 64 * 12);
    assert!(r.ledger.io_ops() > 0, "merged ledger saw the fleet's I/O");
}

#[test]
fn sharding_scales_simulated_throughput() {
    let irs = SharedIrs::compile();
    let one = run_fleet_with(&cfg(Mix::all_specs(), 1, 32), &irs);
    let four = run_fleet_with(&cfg(Mix::all_specs(), 4, 32), &irs);
    assert!(
        four.sim_ops_per_s > 2.0 * one.sim_ops_per_s,
        "4 shards must beat 1 shard well past 2×: {} vs {}",
        four.sim_ops_per_s,
        one.sim_ops_per_s
    );
    assert!(four.sim_makespan_ns < one.sim_makespan_ns);
}

/// The authenticated half of the gate: every instance grows a trace
/// tree, the forest root is one 32-byte digest over the whole fleet's
/// bus history, and it is identical for any shard count — the
/// checkpoint drains that feed it are a pure reorganization too.
#[test]
fn trace_forest_covers_every_instance_shard_independently() {
    let irs = SharedIrs::compile();
    let single = run_fleet_with(&cfg(Mix::all_specs(), 1, 32), &irs);
    assert_eq!(single.forest.len(), 32, "one trace tree per instance");
    for (id, ops, _) in single.forest.roots() {
        assert!(ops > 0, "instance {id} traced no bus operations");
    }
    let sharded = run_fleet_with(&cfg(Mix::all_specs(), 4, 32), &irs);
    assert_eq!(single.trace_root, sharded.trace_root, "forest roots must be shard-independent");
}

/// Sensitivity: skew one instance's trace tree and the gate must fail
/// naming exactly that instance, not just "roots differ".
#[test]
fn gate_names_the_instance_whose_trace_diverges() {
    let irs = SharedIrs::compile();
    let clean = run_fleet_with(&cfg(Mix::all_specs(), 2, 8), &irs);
    let mut skewed = clean.clone();
    let mut extra = Mmr::retained();
    extra.push_leaf(leaf_hash(b"phantom bus op"));
    skewed.forest.append_segment(3, &extra);
    skewed.trace_root = skewed.forest.root();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        clean.assert_replay_equivalent(&skewed);
    }))
    .expect_err("skewed trace must fail the gate");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(std::string::ToString::to_string))
        .unwrap_or_default();
    assert!(msg.contains("instance 3 bus trace diverges"), "gate must name instance 3: {msg}");
}

#[test]
fn checkpoint_cadence_does_not_change_totals() {
    let irs = SharedIrs::compile();
    let mut every_unit = cfg(Mix::storage(), 2, 16);
    every_unit.checkpoint_every_units = 1;
    let mut only_final = cfg(Mix::storage(), 2, 16);
    only_final.checkpoint_every_units = 0;
    let a = run_fleet_with(&every_unit, &irs);
    let b = run_fleet_with(&only_final, &irs);
    a.assert_replay_equivalent(&b);
    assert!(a.checkpoints > b.checkpoints);
}
