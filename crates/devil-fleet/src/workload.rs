//! Fleet workloads: one [`FleetInstance`] = one simulated device with
//! its own private [`Bus`], device model, and Devil driver, running a
//! stream of *units* (one driver hot-loop iteration each).
//!
//! Every unit's parameters are drawn from the instance's own RNG
//! stream, so an instance's entire simulated history is a pure function
//! of `(fleet seed, instance id)` — independent of which shard runs it
//! and of what any other instance does. That is what lets the
//! determinism gate compare merged N-shard results against a
//! single-threaded replay bit for bit.

use devices::ide::SECTOR_SIZE;
use devices::{Busmouse, Cs4236b, IdeController, Ne2000, Permedia2, I8237, I8259};
use devil_ir::DeviceIr;
use devil_runtime::{DeviceInstance, InstanceSnapshot, MappedPort, PlanStats, PortMap};
use devil_sema::model::VarId;
use drivers::{
    specs, Depth, DevilBusmouse, DevilIde, DevilNe2000, DevilPic8259, DevilPm2, PicConfig,
    PioConfig, PioMove,
};
use hwsim::{Bus, Checkpoint, IrqLine, SharedMem};
use std::sync::Arc;

use crate::rng::Rng;

const BUSMOUSE_BASE: u64 = 0x23c;
const PIC_BASE: u64 = 0x20;
const IDE_BASE: u64 = 0x1f0;
const NE2K_BASE: u64 = 0x300;
const PM2_BASE: u64 = 0xf000_0000;
const DMA_BASE: u64 = 0x0;
const CODEC_BASE: u64 = 0x534;

/// Disk size of the per-instance IDE rigs. Small on purpose: a
/// thousand instances must fit comfortably in memory.
const IDE_SECTORS: u64 = 16;
/// DMA target inside the busmaster rig's 16 KiB shared memory.
const DMA_PRD: u32 = 0x1000;
/// Framebuffer of the per-instance Permedia2 (128×64 keeps a thousand
/// instances at ~32 KiB of VRAM each).
const PM2_W: u32 = 128;
const PM2_H: u32 = 64;

/// One driver hot loop from the existing per-driver benchmarks,
/// packaged as a fleet workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// The paper's Figure 3 bus-mouse sample loop.
    Figure3,
    /// 8259A ICW initialization storms (guard-split plan variants).
    IcwStorm,
    /// IDE PIO sector reads (word loops and block stubs).
    PioRead,
    /// NE2000 frame transmits through the remote-DMA window.
    NetBurst,
    /// Permedia2 FIFO-paced fill/copy rectangles.
    FifoRect,
    /// 8237A channel programming (flip-flop-serialized 16-bit pairs).
    DmaProgram,
    /// CS4236B indexed and extended-register accesses (gateway
    /// automaton).
    CodecIndex,
    /// IDE busmaster DMA reads through the PIIX4 function.
    BusMasterDma,
}

impl WorkloadKind {
    /// All kinds — one per shipped specification pair.
    pub const ALL: [WorkloadKind; 8] = [
        WorkloadKind::Figure3,
        WorkloadKind::IcwStorm,
        WorkloadKind::PioRead,
        WorkloadKind::NetBurst,
        WorkloadKind::FifoRect,
        WorkloadKind::DmaProgram,
        WorkloadKind::CodecIndex,
        WorkloadKind::BusMasterDma,
    ];

    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Figure3 => "figure3",
            WorkloadKind::IcwStorm => "icw_storm",
            WorkloadKind::PioRead => "pio_read",
            WorkloadKind::NetBurst => "net_burst",
            WorkloadKind::FifoRect => "fifo_rect",
            WorkloadKind::DmaProgram => "dma_program",
            WorkloadKind::CodecIndex => "codec_index",
            WorkloadKind::BusMasterDma => "busmaster_dma",
        }
    }
}

/// A named weighted blend of workload kinds.
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// The mix name used in benchmark output.
    pub name: &'static str,
    weights: &'static [(WorkloadKind, u32)],
}

impl Mix {
    /// A custom mix.
    pub const fn new(name: &'static str, weights: &'static [(WorkloadKind, u32)]) -> Self {
        Mix { name, weights }
    }

    /// Desktop-ish: mouse samples, irq reprogramming, 2D fills.
    pub const fn interactive() -> Self {
        Mix::new(
            "interactive",
            &[(WorkloadKind::Figure3, 5), (WorkloadKind::IcwStorm, 2), (WorkloadKind::FifoRect, 3)],
        )
    }

    /// Storage-heavy: PIO loops, busmaster DMA, 8237 programming.
    pub const fn storage() -> Self {
        Mix::new(
            "storage",
            &[
                (WorkloadKind::PioRead, 4),
                (WorkloadKind::BusMasterDma, 3),
                (WorkloadKind::DmaProgram, 3),
            ],
        )
    }

    /// Comms-heavy: NIC transmits, codec automata, irq storms.
    pub const fn comms() -> Self {
        Mix::new(
            "comms",
            &[
                (WorkloadKind::NetBurst, 5),
                (WorkloadKind::CodecIndex, 3),
                (WorkloadKind::IcwStorm, 2),
            ],
        )
    }

    /// Every shipped spec with equal weight — the coverage mix the
    /// fleet-wide `general == 0` gate runs on.
    pub const fn all_specs() -> Self {
        Mix::new(
            "all_specs",
            &[
                (WorkloadKind::Figure3, 1),
                (WorkloadKind::IcwStorm, 1),
                (WorkloadKind::PioRead, 1),
                (WorkloadKind::NetBurst, 1),
                (WorkloadKind::FifoRect, 1),
                (WorkloadKind::DmaProgram, 1),
                (WorkloadKind::CodecIndex, 1),
                (WorkloadKind::BusMasterDma, 1),
            ],
        )
    }

    /// Picks a kind from the instance's own stream.
    pub fn pick(&self, rng: &mut Rng) -> WorkloadKind {
        let total: u32 = self.weights.iter().map(|(_, w)| w).sum();
        let mut roll = rng.below(total as u64) as u32;
        for &(kind, w) in self.weights {
            if roll < w {
                return kind;
            }
            roll -= w;
        }
        unreachable!("weights sum covers every roll")
    }
}

/// The eight spec IRs compiled once and shared by every instance in
/// the fleet — workers on other threads clone the `Arc`s, never the
/// plan arenas.
pub struct SharedIrs {
    busmouse: Arc<DeviceIr>,
    pic8259: Arc<DeviceIr>,
    ide: Arc<DeviceIr>,
    piix4: Arc<DeviceIr>,
    ne2000: Arc<DeviceIr>,
    permedia2: Arc<DeviceIr>,
    dma8237: Arc<DeviceIr>,
    cs4236b: Arc<DeviceIr>,
}

impl SharedIrs {
    /// Compiles the embedded spec library once.
    pub fn compile() -> Self {
        SharedIrs {
            busmouse: specs::shared_ir(specs::BUSMOUSE),
            pic8259: specs::shared_ir(specs::PIC8259),
            ide: specs::shared_ir(specs::IDE),
            piix4: specs::shared_ir(specs::PIIX4),
            ne2000: specs::shared_ir(specs::NE2000),
            permedia2: specs::shared_ir(specs::PERMEDIA2),
            dma8237: specs::shared_ir(specs::DMA8237),
            cs4236b: specs::shared_ir(specs::CS4236B),
        }
    }
}

/// Resolved-once variable ids for the raw-instance 8237A workload.
struct DmaIds {
    addr: [VarId; 4],
    count: [VarId; 4],
    mode: VarId,
    single_mask: VarId,
    tc_status: VarId,
    master_clear: VarId,
}

/// Resolved-once variable ids for the raw-instance CS4236B workload.
struct CodecIds {
    id: VarId,
    xd: VarId,
}

/// The per-kind device + driver rig.
enum Rig {
    Figure3 { drv: DevilBusmouse },
    IcwStorm { drv: DevilPic8259 },
    PioRead { drv: DevilIde },
    NetBurst { drv: DevilNe2000, frame: [u8; 64] },
    FifoRect { drv: DevilPm2 },
    DmaProgram { dev: DeviceInstance, ids: DmaIds },
    CodecIndex { dev: DeviceInstance, ids: CodecIds },
    BusMasterDma { drv: DevilIde, mem: SharedMem },
}

/// One simulated device instance: private bus, device model, driver,
/// RNG stream, and a ledger checkpoint cursor.
///
/// Not `Send` (hwsim device models use `Rc` internally by design), so
/// shard workers *build* their instances locally from the shared IRs;
/// only [`InstanceFinal`] results cross threads.
pub struct FleetInstance {
    id: u32,
    kind: WorkloadKind,
    rng: Rng,
    bus: Bus,
    cp: Checkpoint,
    rig: Rig,
    units: u64,
}

fn ide_rig(id: u32, irs: &SharedIrs, mem_bytes: usize) -> (Bus, SharedMem, DevilIde) {
    let irq = IrqLine::new();
    let mem = SharedMem::new(mem_bytes);
    let mut ctl = IdeController::new(IDE_SECTORS, irq, mem.clone());
    for s in 0..IDE_SECTORS as usize {
        for w in 0..SECTOR_SIZE {
            ctl.disk_mut()[s * SECTOR_SIZE + w] = ((s * 7 + w + id as usize) & 0xff) as u8;
        }
    }
    let mut bus = Bus::default();
    bus.enable_trace(true);
    bus.attach_io(Box::new(ctl), IDE_BASE, 16);
    let drv = DevilIde::with_instances(
        IDE_BASE,
        DeviceInstance::with_shared_ir(irs.ide.clone()),
        DeviceInstance::with_shared_ir(irs.piix4.clone()),
    );
    (bus, mem, drv)
}

impl FleetInstance {
    /// Spawns instance `id` of the given kind. All construction
    /// randomness (initial mouse sample, MAC, pixel depth, …) comes
    /// from the instance's own stream.
    pub fn spawn(id: u32, kind: WorkloadKind, irs: &SharedIrs, mut rng: Rng) -> Self {
        let mut bus = Bus::default();
        // Retained mode: drained segments replay into shard forests and
        // survive forest merges; the drain cadence bounds what is ever
        // held at once.
        bus.enable_trace(true);
        let rig = match kind {
            WorkloadKind::Figure3 => {
                let mut dev = Busmouse::new(IrqLine::new());
                dev.move_by(rng.next_u64() as i8, rng.next_u64() as i8);
                dev.set_buttons(rng.below(8) as u8);
                bus.attach_io(Box::new(dev), BUSMOUSE_BASE, 4);
                let inst = DeviceInstance::with_shared_ir(irs.busmouse.clone());
                Rig::Figure3 { drv: DevilBusmouse::with_instance(BUSMOUSE_BASE, inst) }
            }
            WorkloadKind::IcwStorm => {
                bus.attach_io(Box::new(I8259::new(IrqLine::new())), PIC_BASE, 2);
                let inst = DeviceInstance::with_shared_ir(irs.pic8259.clone());
                Rig::IcwStorm { drv: DevilPic8259::with_instance(PIC_BASE, inst) }
            }
            WorkloadKind::PioRead => {
                let (b, _mem, drv) = ide_rig(id, irs, 4096);
                bus = b;
                Rig::PioRead { drv }
            }
            WorkloadKind::NetBurst => {
                let mac = [2, 0, (id >> 8) as u8, id as u8, 0, 1];
                bus.attach_io(Box::new(Ne2000::new(mac, IrqLine::new())), NE2K_BASE, 18);
                let inst = DeviceInstance::with_shared_ir(irs.ne2000.clone());
                let mut drv = DevilNe2000::with_instance(NE2K_BASE, inst);
                drv.start(&mut bus);
                let mut frame = [0u8; 64];
                frame[..6].copy_from_slice(&[0xff; 6]);
                frame[6..12].copy_from_slice(&mac);
                Rig::NetBurst { drv, frame }
            }
            WorkloadKind::FifoRect => {
                bus.attach_mem(Box::new(Permedia2::new(PM2_W, PM2_H)), PM2_BASE, 4096);
                let depth =
                    [Depth::Bpp8, Depth::Bpp16, Depth::Bpp24, Depth::Bpp32][rng.below(4) as usize];
                let inst = DeviceInstance::with_shared_ir(irs.permedia2.clone());
                let mut drv = DevilPm2::with_instance(PM2_BASE, depth, inst);
                drv.set_depth(&mut bus);
                Rig::FifoRect { drv }
            }
            WorkloadKind::DmaProgram => {
                bus.attach_io(Box::new(I8237::new(SharedMem::new(1024))), DMA_BASE, 16);
                let dev = DeviceInstance::with_shared_ir(irs.dma8237.clone());
                let v = |n: &str| dev.var_id(n).expect("dma8237 spec exports its registers");
                let ids = DmaIds {
                    addr: [v("addr0"), v("addr1"), v("addr2"), v("addr3")],
                    count: [v("count0"), v("count1"), v("count2"), v("count3")],
                    mode: v("mode"),
                    single_mask: v("single_mask"),
                    tc_status: v("tc_status"),
                    master_clear: v("master_clear"),
                };
                Rig::DmaProgram { dev, ids }
            }
            WorkloadKind::CodecIndex => {
                bus.attach_io(Box::new(Cs4236b::new()), CODEC_BASE, 2);
                let dev = DeviceInstance::with_shared_ir(irs.cs4236b.clone());
                let ids = CodecIds {
                    id: dev.var_id("ID").expect("cs4236b spec exports ID"),
                    xd: dev.var_id("XD").expect("cs4236b spec exports XD"),
                };
                Rig::CodecIndex { dev, ids }
            }
            WorkloadKind::BusMasterDma => {
                let (b, mem, drv) = ide_rig(id, irs, 16 << 10);
                bus = b;
                Rig::BusMasterDma { drv, mem }
            }
        };
        FleetInstance { id, kind, rng, bus, cp: Checkpoint::new(), rig, units: 0 }
    }

    /// The instance id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Units completed so far.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// The instance's private bus clock, in simulated nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.bus.now_ns()
    }

    /// The next interarrival gap for this instance's unit stream.
    pub fn next_gap_ns(&mut self, mean_ns: u64) -> u64 {
        self.rng.exp_ns(mean_ns)
    }

    /// Drains the ledger delta accumulated since the last checkpoint.
    pub fn drain_checkpoint(&mut self) -> hwsim::Ledger {
        self.cp.drain(&self.bus.ledger())
    }

    /// Drains the authenticated trace accumulated since the last
    /// checkpoint as a retained MMR segment, ready for
    /// [`hwsim::MmrForest::append_segment`].
    pub fn drain_trace_segment(&mut self) -> hwsim::Mmr {
        self.bus.drain_trace_segment().expect("fleet buses always trace")
    }

    /// Runs one workload unit, drawing its parameters from the
    /// instance's stream. Kinds with a shipped superplan (ICW storms,
    /// PIO reads, NIC transmits, fill rectangles) flip per unit between
    /// the fused one-guard dispatch and the unfused plan-by-plan path,
    /// so the determinism gate covers both pipelines interleaved.
    /// Returns the simulated nanoseconds the unit's bus activity took.
    pub fn run_unit(&mut self) -> u64 {
        let t0 = self.bus.now_ns();
        let (bus, rng) = (&mut self.bus, &mut self.rng);
        match &mut self.rig {
            Rig::Figure3 { drv } => {
                if rng.chance(1, 8) {
                    let enable = rng.chance(1, 2);
                    drv.set_irq(bus, enable);
                }
                let _ = drv.read_state(bus);
            }
            Rig::IcwStorm { drv } => {
                let cfg = PicConfig {
                    single: rng.chance(1, 2),
                    with_icw4: rng.chance(1, 2),
                    vector_base: (rng.below(32) << 3) as u8,
                    cascade_map: 0x04,
                    x86: rng.chance(1, 2),
                    auto_eoi: rng.chance(1, 4),
                    irq_mask: rng.next_u64() as u8,
                };
                if rng.chance(1, 2) {
                    drv.init_fused(bus, cfg);
                } else {
                    drv.init(bus, cfg);
                }
            }
            Rig::PioRead { drv } => {
                let lba = rng.below(IDE_SECTORS) as u32;
                let cfg = PioConfig {
                    sectors_per_irq: 1,
                    io32: rng.chance(1, 2),
                    moves: if rng.chance(1, 4) { PioMove::Loop } else { PioMove::Block },
                };
                if rng.chance(1, 2) {
                    let _ = drv.read_pio_fused(bus, lba, 1, cfg);
                } else {
                    let _ = drv.read_pio(bus, lba, 1, cfg);
                }
            }
            Rig::NetBurst { drv, frame } => {
                for b in &mut frame[12..20] {
                    *b = rng.next_u64() as u8;
                }
                let len = 20 + rng.below(44) as usize;
                if rng.chance(1, 2) {
                    drv.send_fused(bus, &frame[..len]);
                } else {
                    drv.send(bus, &frame[..len]);
                }
            }
            Rig::FifoRect { drv } => {
                let x = rng.below((PM2_W - 8) as u64) as u32;
                let y = rng.below((PM2_H - 8) as u64) as u32;
                let w = 1 + rng.below(16) as u32;
                let h = 1 + rng.below(8) as u32;
                if rng.chance(1, 4) {
                    let dx = rng.below((PM2_W - 8) as u64) as u32;
                    let dy = rng.below((PM2_H - 8) as u64) as u32;
                    drv.copy_rect(bus, x, y, dx, dy, w, h);
                } else {
                    let color = rng.next_u64() as u32;
                    if rng.chance(1, 2) {
                        drv.fill_rect_fused(bus, x, y, w, h, color);
                    } else {
                        drv.fill_rect(bus, x, y, w, h, color);
                    }
                }
            }
            Rig::DmaProgram { dev, ids } => {
                let ch = rng.below(4) as usize;
                let mut map = PortMap::new(bus, vec![MappedPort::io(DMA_BASE)]);
                // Mode: random high bits, channel select in bits 1..0.
                let mode = (rng.next_u64() & 0xfc) | ch as u64;
                dev.write_id(&mut map, ids.mode, &[], mode).unwrap();
                // Mask the channel, program the 16-bit pair (the
                // flip-flop pre-action serializes low;high), unmask.
                dev.write_id(&mut map, ids.single_mask, &[], 0b100 | ch as u64).unwrap();
                dev.write_id(&mut map, ids.addr[ch], &[], rng.below(1 << 16)).unwrap();
                dev.write_id(&mut map, ids.count[ch], &[], rng.below(256)).unwrap();
                dev.write_id(&mut map, ids.single_mask, &[], ch as u64).unwrap();
                let _ = dev.read_id(&mut map, ids.tc_status, &[]).unwrap();
                if rng.chance(1, 16) {
                    dev.write_id(&mut map, ids.master_clear, &[], 1).unwrap();
                }
            }
            Rig::CodecIndex { dev, ids } => {
                // I23 is the extended-register gateway; direct data
                // writes go to the other 31 indexed registers.
                let pick_plain = |rng: &mut Rng| {
                    let r = rng.below(31);
                    if r >= 23 {
                        r + 1
                    } else {
                        r
                    }
                };
                let i = pick_plain(rng);
                let j = pick_plain(rng);
                let mut map = PortMap::new(bus, vec![MappedPort::io(CODEC_BASE)]);
                dev.write_id(&mut map, ids.id, &[i], rng.below(256)).unwrap();
                let _ = dev.read_id(&mut map, ids.id, &[j]).unwrap();
                if rng.chance(1, 4) {
                    let r = rng.below(19);
                    let x = if r == 18 { 25 } else { r };
                    dev.write_id(&mut map, ids.xd, &[x], rng.below(256)).unwrap();
                    let _ = dev.read_id(&mut map, ids.xd, &[x]).unwrap();
                }
            }
            Rig::BusMasterDma { drv, mem } => {
                let count = 1 + rng.below(2) as u32;
                let lba = rng.below(IDE_SECTORS - count as u64) as u32;
                let _ = drv.read_dma(bus, mem, lba, count, DMA_PRD);
            }
        }
        self.units += 1;
        let service = (self.bus.now_ns() - t0).round() as u64;
        service.max(1)
    }

    /// Summed plan-dispatch counters of every interpreter instance in
    /// the rig.
    pub fn plan_stats(&self) -> PlanStats {
        let mut sum = PlanStats::default();
        let mut add = |s: PlanStats| {
            sum.straight += s.straight;
            sum.guarded += s.guarded;
            sum.fused += s.fused;
            sum.general += s.general;
        };
        match &self.rig {
            Rig::Figure3 { drv } => add(drv.plan_stats()),
            Rig::IcwStorm { drv } => add(drv.plan_stats()),
            Rig::PioRead { drv } | Rig::BusMasterDma { drv, .. } => {
                add(drv.ide_plan_stats());
                add(drv.bm_plan_stats());
            }
            Rig::NetBurst { drv, .. } => add(drv.plan_stats()),
            Rig::FifoRect { drv } => add(drv.plan_stats()),
            Rig::DmaProgram { dev, .. } | Rig::CodecIndex { dev, .. } => add(dev.plan_stats()),
        }
        sum
    }

    /// Snapshots of every interpreter instance in the rig (one for
    /// most rigs, two for IDE which pairs a task file with the PIIX4
    /// busmaster function).
    pub fn snapshots(&self) -> Vec<InstanceSnapshot> {
        match &self.rig {
            Rig::Figure3 { drv } => vec![drv.instance().snapshot()],
            Rig::IcwStorm { drv } => vec![drv.instance().snapshot()],
            Rig::PioRead { drv } | Rig::BusMasterDma { drv, .. } => {
                let (ide, bm) = drv.instances();
                vec![ide.snapshot(), bm.snapshot()]
            }
            Rig::NetBurst { drv, .. } => vec![drv.instance().snapshot()],
            Rig::FifoRect { drv } => vec![drv.instance().snapshot()],
            Rig::DmaProgram { dev, .. } | Rig::CodecIndex { dev, .. } => vec![dev.snapshot()],
        }
    }

    /// The instance's full bus ledger.
    pub fn ledger(&self) -> hwsim::Ledger {
        self.bus.ledger()
    }
}
