//! Fleet-scale sharded simulation of Devil-driven devices.
//!
//! The per-driver crates prove one device at a time; this crate proves
//! the *fleet* story: hundreds to thousands of [`DeviceInstance`]s with
//! mixed specifications running concurrently, sharded across worker
//! threads, with per-shard [`hwsim`] ledgers merged deterministically
//! at checkpoints.
//!
//! # Model
//!
//! Each instance owns a private [`hwsim::Bus`], device model, and Devil
//! driver, and runs a stream of *units* (one driver hot-loop iteration
//! each: a Figure-3 mouse sample, an ICW storm, a PIO sector, …). Unit
//! parameters and open-loop arrival times come from a per-instance
//! SplitMix64 stream seeded with `(fleet seed, instance id)`, so an
//! instance's history is identical no matter how the fleet is sharded.
//!
//! Each shard worker runs a discrete-event loop over its instances:
//! arrivals are exponential in integer simulated nanoseconds, service
//! times come from the instance's own bus clock (the hwsim cost
//! model), and a unit's latency is completion minus arrival — real
//! queueing, so p99/p999 respond to load the way a driver stack's tail
//! latencies do. Device models use `Rc` internally and are not `Send`,
//! so workers *build* their shard's instances locally from shared
//! [`Arc`]-backed IRs; only plain-data results cross threads.
//!
//! # Determinism gate
//!
//! [`FleetReport::assert_replay_equivalent`] checks that merged
//! N-shard results — fleet ledger totals, per-instance final ledgers
//! and interpreter snapshots, plan-dispatch counters, unit counts —
//! are exactly equal to a single-threaded replay. Latency percentiles
//! are *excluded*: they measure queueing, which legitimately depends
//! on the shard count.

#![forbid(unsafe_code)]

mod rng;
mod workload;

pub use rng::Rng;
pub use workload::{FleetInstance, Mix, SharedIrs, WorkloadKind};

use devil_runtime::{DeviceInstance, InstanceSnapshot, PlanStats};
use hwsim::{Hash, Ledger, MmrForest};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fleet run configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Worker threads; instances are dealt round-robin (`id % shards`).
    pub shards: usize,
    /// Total device instances across all shards.
    pub instances: usize,
    /// Workload units each instance runs.
    pub units_per_instance: u64,
    /// Fleet seed; all per-instance streams derive from it.
    pub seed: u64,
    /// Mean of the exponential interarrival gap per instance.
    pub arrival_mean_ns: u64,
    /// Shard-local units between ledger-checkpoint merges (0 = only
    /// the final merge).
    pub checkpoint_every_units: u64,
    /// The workload blend.
    pub mix: Mix,
}

impl FleetConfig {
    /// A small default fleet of the given mix: single shard, 100
    /// instances, 100 units each.
    pub fn new(mix: Mix) -> Self {
        FleetConfig {
            shards: 1,
            instances: 100,
            units_per_instance: 100,
            seed: 0xf1ee7,
            arrival_mean_ns: 50_000,
            checkpoint_every_units: 64,
            mix,
        }
    }
}

/// The final, shard-independent state of one instance.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceFinal {
    /// Instance id (0-based, fleet-wide).
    pub id: u32,
    /// The workload it ran.
    pub kind: WorkloadKind,
    /// Units it completed.
    pub units: u64,
    /// Its private bus ledger at the end of the run.
    pub ledger: Ledger,
    /// Snapshots of its interpreter instances (two for IDE rigs).
    pub snapshots: Vec<InstanceSnapshot>,
}

/// What one shard worker sends back to the merge step.
struct ShardResult {
    ledger: Ledger,
    forest: MmrForest,
    stats: PlanStats,
    latencies_ns: Vec<u64>,
    clock_ns: u64,
    units: u64,
    checkpoints: u64,
    finals: Vec<InstanceFinal>,
}

/// The merged result of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Shards the run used.
    pub shards: usize,
    /// Instances the run spawned.
    pub instances: usize,
    /// Total units completed.
    pub units: u64,
    /// Fleet ledger: every shard's checkpoint deltas merged in shard
    /// order.
    pub ledger: Ledger,
    /// Authenticated trace forest: one MMR per instance, fed from the
    /// per-instance bus traces at every checkpoint drain. An instance
    /// lives on exactly one shard, so the fleet merge is a disjoint
    /// union — commutative and cadence-independent.
    pub forest: MmrForest,
    /// The forest root: one 32-byte digest authenticating every bus
    /// operation of every instance in the fleet.
    pub trace_root: Hash,
    /// Summed plan-dispatch counters across every interpreter in the
    /// fleet.
    pub stats: PlanStats,
    /// Checkpoint merges performed across all shards.
    pub checkpoints: u64,
    /// Simulated makespan: the latest shard clock, in nanoseconds.
    pub sim_makespan_ns: u64,
    /// Aggregate simulated throughput: units per simulated second.
    pub sim_ops_per_s: f64,
    /// Wall-clock duration of the run (spawn + simulate + merge).
    pub wall: Duration,
    /// Units per wall-clock second on the host.
    pub wall_ops_per_s: f64,
    /// Unit latency percentiles (completion − arrival), nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// 99.9th percentile latency.
    pub p999_ns: u64,
    /// Final per-instance state, ordered by instance id.
    pub finals: Vec<InstanceFinal>,
}

impl FleetReport {
    /// Asserts that `self` and `other` agree on every shard-count
    /// independent quantity: the determinism gate. Panics with the
    /// first disagreement.
    pub fn assert_replay_equivalent(&self, other: &FleetReport) {
        assert_eq!(self.instances, other.instances, "instance counts differ");
        assert_eq!(self.units, other.units, "total unit counts differ");
        assert_eq!(self.ledger, other.ledger, "merged fleet ledgers differ");
        if self.trace_root != other.trace_root {
            // One 32-byte compare said the fleets diverged somewhere;
            // the per-instance roots name the culprit.
            for ((ida, la, ra), (idb, lb, rb)) in self.forest.roots().zip(other.forest.roots()) {
                assert_eq!(ida, idb, "trace forests cover different instance sets");
                assert!(
                    la == lb && ra == rb,
                    "instance {ida} bus trace diverges between {} and {} shards: \
                     {la} ops root {ra} vs {lb} ops root {rb}",
                    self.shards,
                    other.shards
                );
            }
            panic!(
                "fleet trace roots differ ({} vs {}) but every per-instance root agrees",
                self.trace_root, other.trace_root
            );
        }
        assert_eq!(self.stats, other.stats, "plan-dispatch counters differ");
        assert_eq!(self.finals.len(), other.finals.len(), "per-instance result counts differ");
        for (a, b) in self.finals.iter().zip(&other.finals) {
            assert_eq!(a.id, b.id, "instance order diverged");
            assert_eq!(
                a,
                b,
                "instance {} ({}) final state differs between {} and {} shards",
                a.id,
                a.kind.name(),
                self.shards,
                other.shards
            );
        }
    }
}

/// Runs one shard: build its instances locally, then drain the
/// discrete-event loop.
fn run_shard(cfg: &FleetConfig, irs: &SharedIrs, shard: usize) -> ShardResult {
    let mut insts: Vec<FleetInstance> = (shard..cfg.instances)
        .step_by(cfg.shards)
        .map(|id| {
            let mut rng = Rng::for_instance(cfg.seed, id as u64);
            let kind = cfg.mix.pick(&mut rng);
            FleetInstance::spawn(id as u32, kind, irs, rng)
        })
        .collect();

    // (arrival_ns, local index); Reverse for a min-heap, index as the
    // deterministic tie-breaker.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(insts.len());
    for (idx, inst) in insts.iter_mut().enumerate() {
        let gap = inst.next_gap_ns(cfg.arrival_mean_ns);
        heap.push(Reverse((gap, idx)));
    }

    let mut ledger = Ledger::default();
    // Streaming trees: the gate only needs roots, so a shard holds
    // O(instances · log ops) hashes no matter how long the run is.
    let mut forest = MmrForest::new(false);
    let mut latencies_ns = Vec::with_capacity(insts.len() * cfg.units_per_instance as usize);
    let mut clock_ns = 0u64;
    let mut units = 0u64;
    let mut checkpoints = 0u64;

    while let Some(Reverse((arrival, idx))) = heap.pop() {
        let inst = &mut insts[idx];
        let service = inst.run_unit();
        let start = clock_ns.max(arrival);
        clock_ns = start + service;
        latencies_ns.push(clock_ns - arrival);
        units += 1;
        if inst.units() < cfg.units_per_instance {
            let gap = inst.next_gap_ns(cfg.arrival_mean_ns);
            heap.push(Reverse((arrival + gap, idx)));
        }
        if cfg.checkpoint_every_units > 0 && units.is_multiple_of(cfg.checkpoint_every_units) {
            for inst in &mut insts {
                ledger.merge(&inst.drain_checkpoint());
                forest.append_segment(inst.id() as u64, &inst.drain_trace_segment());
            }
            checkpoints += 1;
        }
    }
    // Final checkpoint: whatever accumulated since the last merge.
    for inst in &mut insts {
        ledger.merge(&inst.drain_checkpoint());
        forest.append_segment(inst.id() as u64, &inst.drain_trace_segment());
    }
    checkpoints += 1;

    let mut stats = PlanStats::default();
    let finals = insts
        .iter()
        .map(|inst| {
            let s = inst.plan_stats();
            stats.straight += s.straight;
            stats.guarded += s.guarded;
            stats.fused += s.fused;
            stats.general += s.general;
            InstanceFinal {
                id: inst.id(),
                kind: inst.kind(),
                units: inst.units(),
                ledger: inst.ledger(),
                snapshots: inst.snapshots(),
            }
        })
        .collect();

    ShardResult { ledger, forest, stats, latencies_ns, clock_ns, units, checkpoints, finals }
}

/// Nearest-rank percentile: the smallest value such that at least
/// `q·len` samples are ≤ it, i.e. `sorted[ceil(q·len) - 1]` clamped to
/// the valid range. The previous linear-index rounding deviated at
/// small sample counts (p50 of 4 samples picked index 2; nearest-rank
/// is index 1).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs a fleet, compiling the spec library first. Benchmarks that
/// sweep many configurations should compile once and use
/// [`run_fleet_with`].
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    run_fleet_with(cfg, &SharedIrs::compile())
}

/// Runs a fleet against already-compiled shared IRs.
pub fn run_fleet_with(cfg: &FleetConfig, irs: &SharedIrs) -> FleetReport {
    assert!(cfg.shards >= 1, "a fleet needs at least one shard");
    assert!(cfg.instances >= 1, "a fleet needs at least one instance");

    let start = Instant::now();
    let results: Vec<ShardResult> = std::thread::scope(|s| {
        let handles: Vec<_> =
            (0..cfg.shards).map(|shard| s.spawn(move || run_shard(cfg, irs, shard))).collect();
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    });
    let wall = start.elapsed();

    // Merge in shard order — deterministic, and `Ledger::merge` is
    // commutative besides (the property test in hwsim proves it).
    let mut ledger = Ledger::default();
    let mut forest = MmrForest::new(false);
    let mut stats = PlanStats::default();
    let mut units = 0u64;
    let mut checkpoints = 0u64;
    let mut sim_makespan_ns = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut finals: Vec<InstanceFinal> = Vec::with_capacity(cfg.instances);
    for r in results {
        ledger.merge(&r.ledger);
        forest.merge(r.forest);
        stats.straight += r.stats.straight;
        stats.guarded += r.stats.guarded;
        stats.fused += r.stats.fused;
        stats.general += r.stats.general;
        units += r.units;
        checkpoints += r.checkpoints;
        sim_makespan_ns = sim_makespan_ns.max(r.clock_ns);
        latencies.extend(r.latencies_ns);
        finals.extend(r.finals);
    }
    finals.sort_by_key(|f| f.id);
    latencies.sort_unstable();

    let sim_ops_per_s =
        if sim_makespan_ns > 0 { units as f64 / (sim_makespan_ns as f64 / 1e9) } else { 0.0 };
    let wall_s = wall.as_secs_f64();
    let wall_ops_per_s = if wall_s > 0.0 { units as f64 / wall_s } else { 0.0 };

    let trace_root = forest.root();
    FleetReport {
        shards: cfg.shards,
        instances: cfg.instances,
        units,
        ledger,
        forest,
        trace_root,
        stats,
        checkpoints,
        sim_makespan_ns,
        sim_ops_per_s,
        wall,
        wall_ops_per_s,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        p999_ns: percentile(&latencies, 0.999),
        finals,
    }
}

// The fleet hands instances to worker threads by construction recipe
// rather than by value (hwsim devices are intentionally `!Send`), but
// the interpreter state that crosses threads must stay `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Arc<devil_ir::DeviceIr>>();
    assert_send_sync::<DeviceInstance>();
    assert_send_sync::<InstanceSnapshot>();
};

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_of_one_sample_is_that_sample() {
        let s = [7];
        assert_eq!(percentile(&s, 0.50), 7);
        assert_eq!(percentile(&s, 0.99), 7);
        assert_eq!(percentile(&s, 0.999), 7);
    }

    #[test]
    fn percentile_of_two_samples() {
        let s = [10, 20];
        // Nearest-rank p50 of 2 samples is the first: ceil(0.5·2) = 1.
        assert_eq!(percentile(&s, 0.50), 10);
        assert_eq!(percentile(&s, 0.99), 20);
    }

    #[test]
    fn percentile_of_four_samples() {
        let s = [1, 2, 3, 4];
        // ceil(0.5·4) = 2 → second sample, not the old round()'s third.
        assert_eq!(percentile(&s, 0.50), 2);
        assert_eq!(percentile(&s, 0.75), 3);
        assert_eq!(percentile(&s, 0.99), 4);
    }

    #[test]
    fn percentile_of_ten_samples() {
        let s: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&s, 0.50), 5);
        assert_eq!(percentile(&s, 0.90), 9);
        assert_eq!(percentile(&s, 0.99), 10);
    }

    #[test]
    fn percentile_of_hundred_samples() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.50), 50);
        assert_eq!(percentile(&s, 0.99), 99);
        assert_eq!(percentile(&s, 0.999), 100);
    }

    #[test]
    fn percentile_extremes_are_clamped() {
        let s: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&s, 0.0), 1);
        assert_eq!(percentile(&s, 1.0), 10);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
