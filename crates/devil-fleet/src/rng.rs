//! A tiny deterministic RNG for fleet workloads.
//!
//! SplitMix64: one `u64` of state, a fixed increment, and a finalizer
//! with full avalanche. The fleet needs (a) determinism across shard
//! counts — every instance draws only from its own stream, seeded by
//! `(fleet seed, instance id)` — and (b) streams for nearby ids that do
//! not correlate, which the multiply-by-golden-ratio seeding gives.

/// The SplitMix64 additive constant (the 64-bit golden ratio).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// A deterministic per-instance random stream.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// A stream seeded directly.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// The stream of instance `id` in a fleet seeded with `seed`.
    ///
    /// Identical regardless of how instances are partitioned into
    /// shards — the foundation of the replay-determinism gate.
    pub fn for_instance(seed: u64, id: u64) -> Self {
        let mut r = Rng(seed ^ id.wrapping_mul(GOLDEN));
        // Burn one output so consecutive ids decorrelate immediately.
        r.next_u64();
        r
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n` must be nonzero; modulo bias is
    /// irrelevant at workload scales).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// An exponentially distributed interarrival gap with the given
    /// mean, in integer nanoseconds (at least 1).
    ///
    /// Open-loop arrivals with a long right tail make the p999 latency
    /// figure mean something; the gate quantities (ledgers, snapshots)
    /// never depend on arrival times, so the `f64` log here cannot
    /// perturb the determinism check.
    pub fn exp_ns(&mut self, mean_ns: u64) -> u64 {
        let u = ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        let x = -(1.0 - u).ln() * mean_ns as f64;
        (x as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = Rng::for_instance(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::for_instance(7, 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same (seed, id) must replay the same stream");
        let mut c = Rng::for_instance(7, 4);
        assert_ne!(a[0], c.next_u64(), "adjacent ids must diverge");
    }

    #[test]
    fn exp_gaps_average_near_the_mean() {
        let mut r = Rng::new(42);
        let n = 10_000u64;
        let sum: u64 = (0..n).map(|_| r.exp_ns(20_000)).sum();
        let mean = sum / n;
        assert!((15_000..25_000).contains(&mean), "mean gap {mean} off");
    }
}
