//! Property tests for the ledger's merge/checkpoint discipline.
//!
//! A fleet harness splits one logical operation stream across shards,
//! each accumulating counts in its own ledger, and folds the shard
//! ledgers back together at checkpoints. That is only sound if:
//!
//! * merging per-shard ledgers in *any* order equals counting the whole
//!   stream in one ledger (commutative, associative, lossless), and
//! * checkpoint drains partition the stream — deltas merge back to the
//!   full ledger and never regress ("ledger went backwards").

use hwsim::{Checkpoint, Ledger};
use proptest::prelude::*;

const COUNTERS: u64 = 14;
const SHARDS: usize = 4;

/// Bumps one of the 14 public counters by `amount`.
fn apply(l: &mut Ledger, kind: u64, amount: u64) {
    match kind % COUNTERS {
        0..=2 => l.io_in[(kind % 3) as usize] += amount,
        3..=5 => l.io_out[(kind % 3) as usize] += amount,
        6 => l.block_in_words += amount,
        7 => l.block_out_words += amount,
        8 => l.block_ops += amount,
        9 => l.mem_read += amount,
        10 => l.mem_write += amount,
        11 => l.dma_words += amount,
        12 => l.dma_ops += amount,
        _ => l.unclaimed += amount,
    }
}

/// Decodes a generated op word into (shard, counter kind, amount).
fn decode(op: u64) -> (usize, u64, u64) {
    ((op % SHARDS as u64) as usize, (op / SHARDS as u64) % COUNTERS, 1 + (op >> 32) % 7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_any_order_equals_single_threaded(ops in proptest::collection::vec(0u64..u64::MAX, 0..64), rot in 0usize..SHARDS) {
        let mut single = Ledger::new();
        let mut shards = [Ledger::new(); SHARDS];
        for &op in &ops {
            let (shard, kind, amount) = decode(op);
            apply(&mut single, kind, amount);
            apply(&mut shards[shard], kind, amount);
        }
        // Fold forward, fold backward, and fold from a rotated start:
        // every order must agree with the single-threaded ledger.
        let mut fwd = Ledger::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut bwd = Ledger::new();
        for s in shards.iter().rev() {
            bwd.merge(s);
        }
        let mut rotated = Ledger::new();
        for i in 0..SHARDS {
            rotated.merge(&shards[(i + rot) % SHARDS]);
        }
        prop_assert_eq!(fwd, single);
        prop_assert_eq!(bwd, single);
        prop_assert_eq!(rotated, single);
        // Lossless: per-kind totals survive, not just the grand total.
        prop_assert_eq!(fwd.total_ops(), single.total_ops());
    }

    #[test]
    fn checkpoint_drains_partition_the_stream(ops in proptest::collection::vec(0u64..u64::MAX, 1..64), every in 1usize..8) {
        let mut live = Ledger::new();
        let mut cp = Checkpoint::new();
        let mut committed = Ledger::new();
        let mut drains = 0u64;
        for (i, &op) in ops.iter().enumerate() {
            let (_, kind, amount) = decode(op);
            apply(&mut live, kind, amount);
            if i % every == 0 {
                // Monotonic stream: drain never panics, and each delta
                // is exactly what accrued since the last one.
                let delta = cp.drain(&live);
                committed.merge(&delta);
                drains += 1;
                prop_assert_eq!(committed, cp.drained());
            }
        }
        committed.merge(&cp.drain(&live));
        prop_assert_eq!(committed, live, "drained deltas must re-merge to the live ledger");
        prop_assert!(drains >= 1);
        // A second drain with no traffic is empty.
        prop_assert_eq!(cp.drain(&live), Ledger::new());
    }
}
