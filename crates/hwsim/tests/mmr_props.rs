//! Property tests for the MMR accumulator.
//!
//! The authenticated-trace machinery is only sound if:
//!
//! * roots are injective over leaf streams (equal roots ⇔ equal
//!   streams, for the generated universe),
//! * streaming (peaks-only) and retained accumulation agree, so the
//!   O(peaks) replay mode proves the same statement,
//! * drain cadence is invisible: merging per-segment forests equals
//!   accumulating the merged log directly (the fleet's checkpoint
//!   discipline), and
//! * [`bisect_divergence`] names exactly the leaf a linear scan names,
//!   in O(log N) hash compares (the sensitivity property the failure
//!   reports rely on).

use hwsim::mmr::{bisect_divergence, leaf_hash, linear_divergence, Hash, Mmr, MmrForest, MmrLog};
use proptest::prelude::*;

fn leaves(words: &[u64]) -> Vec<Hash> {
    words.iter().map(|w| leaf_hash(&w.to_le_bytes())).collect()
}

fn mmr_of(hashes: &[Hash]) -> Mmr {
    let mut m = Mmr::retained();
    for &h in hashes {
        m.push_leaf(h);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roots_separate_streams(a in proptest::collection::vec(any::<u64>(), 0..200),
                              b in proptest::collection::vec(any::<u64>(), 0..200)) {
        let (ra, rb) = (mmr_of(&leaves(&a)).root(), mmr_of(&leaves(&b)).root());
        prop_assert_eq!(a == b, ra == rb);
    }

    #[test]
    fn streaming_equals_retained(words in proptest::collection::vec(any::<u64>(), 0..300)) {
        let mut s = Mmr::streaming();
        for &h in &leaves(&words) {
            s.push_leaf(h);
        }
        prop_assert_eq!(s.root(), mmr_of(&leaves(&words)).root());
        // The memory bound the streaming mode exists for: peaks only.
        prop_assert!(s.peaks().len() <= 64);
    }

    #[test]
    fn fold_watermark_is_invisible(words in proptest::collection::vec(any::<u64>(), 1..300),
                                   watermark in 1usize..40) {
        let mut batched = MmrLog::new(false).with_watermark(watermark, usize::MAX);
        let mut eager = MmrLog::new(false).with_watermark(1, usize::MAX);
        for w in &words {
            batched.push(&w.to_le_bytes());
            eager.push(&w.to_le_bytes());
        }
        prop_assert_eq!(batched.len(), words.len() as u64);
        prop_assert_eq!(batched.root(), eager.root());
    }

    /// Merge of per-shard forests ≡ MMR forest of the merged log: a
    /// stream of (source, entry) records is split by drain cadence
    /// into segments per source across two "shards"; merging the shard
    /// forests must equal accumulating each source's whole stream.
    #[test]
    fn forest_merge_equals_merged_log(
        records in proptest::collection::vec((0u64..6, any::<u64>()), 0..200),
        cadence in 1usize..20,
    ) {
        // Ground truth: one MMR per source over its full subsequence.
        let mut whole = MmrForest::new(false);
        for &(src, w) in &records {
            let seg = mmr_of(&leaves(&[w]));
            whole.append_segment(src, &seg);
        }

        // Sharded: sources 0..3 on shard A, 3..6 on shard B, each
        // draining per-source MmrLogs every `cadence` records.
        let mut shards = [MmrForest::new(false), MmrForest::new(false)];
        let mut logs: std::collections::BTreeMap<u64, MmrLog> = Default::default();
        for (i, &(src, w)) in records.iter().enumerate() {
            logs.entry(src).or_insert_with(|| MmrLog::new(true)).push(&w.to_le_bytes());
            if (i + 1) % cadence == 0 {
                for (&src, log) in &mut logs {
                    let shard = &mut shards[(src >= 3) as usize];
                    shard.append_segment(src, &log.take_segment());
                }
            }
        }
        for (&src, log) in &mut logs {
            shards[(src >= 3) as usize].append_segment(src, &log.take_segment());
        }
        let [a, b] = shards;
        let mut merged = a;
        merged.merge(b);
        prop_assert_eq!(merged.root(), whole.root());
    }

    /// Sensitivity: a single mutated leaf is located exactly, at the
    /// index the linear scan reports, within the O(log N) budget.
    #[test]
    fn bisect_names_the_linear_divergence(
        words in proptest::collection::vec(any::<u64>(), 1..400),
        pick in any::<usize>(),
        extra in 0usize..3,
    ) {
        let ls = leaves(&words);
        let reference = mmr_of(&ls);
        let k = pick % ls.len();
        let mut mutated = ls.clone();
        mutated[k] = leaf_hash(b"injected divergence");
        // Optionally extend the mutated stream, so cross-length
        // bisection is exercised too.
        mutated.extend(leaves(&vec![3; extra]));
        let m = mmr_of(&mutated);

        let linear = linear_divergence(&reference, &m);
        let d = bisect_divergence(&reference, &m).expect("streams differ");
        prop_assert_eq!(Some(d.leaf), linear);
        let n = reference.leaves().max(m.leaves());
        let bound = 2 * (64 - n.leading_zeros() as u64) + 2;
        prop_assert!(d.compares <= bound, "{} compares > {bound} for n={n}", d.compares);
    }

    /// Pure length divergence (one stream a proper prefix of the
    /// other) is named at the first leaf past the common prefix.
    #[test]
    fn bisect_names_prefix_truncations(
        words in proptest::collection::vec(any::<u64>(), 2..300),
        cut in any::<usize>(),
    ) {
        let ls = leaves(&words);
        let cut = 1 + cut % (ls.len() - 1);
        let full = mmr_of(&ls);
        let part = mmr_of(&ls[..cut]);
        prop_assert!(full.root() != part.root());
        let d = bisect_divergence(&full, &part).expect("lengths differ");
        prop_assert_eq!(d.leaf, cut as u64);
        prop_assert_eq!(linear_divergence(&full, &part), Some(cut as u64));
    }
}
