//! A Merkle Mountain Range accumulator over bus traces.
//!
//! Every equivalence proof in this workspace — fast-vs-general,
//! fused-vs-unfused, the compiled-C oracle, the fleet determinism gate
//! — needs to establish that two operation streams are bit-identical.
//! Comparing them line by line retains both streams and scans them
//! end to end, which caps replay length; an MMR collapses "identical
//! over N million ops" into one 32-byte root compare, and localizes a
//! divergence by descending peaks in O(log N) hash compares instead of
//! a linear scan.
//!
//! The shape is the classic append-only mountain range: the binary
//! representation of the leaf count determines the forest — each set
//! bit is one perfect binary tree ("peak") of that height. Appending a
//! leaf pushes a height-0 peak and then merges equal-height neighbours,
//! exactly like binary increment carries, so appends are O(1) amortized
//! with zero rotations and the node array is strictly append-only.
//! That last property is what bisection leans on: the node array for
//! the first `k` leaves is a *prefix* of the node array for any larger
//! leaf count (see `prefix_property` below), so two traces can be
//! compared subtree-by-subtree at matching positions.
//!
//! Three layers:
//!
//! * [`Hash`] / [`Hasher`] — a vendored Blake3-style digest (the BLAKE3
//!   compression function under simplified sequential chaining; see the
//!   note on [`Hasher`]). No external crates: `hwsim` stays
//!   dependency-free.
//! * [`Mmr`] — the accumulator, in *retained* mode (keeps the node
//!   array; supports [`bisect_divergence`] and segment replay) or
//!   *streaming* mode (keeps only the peaks stack — O(log N) memory for
//!   million-op replays).
//! * [`MmrLog`] / [`MmrForest`] — deferred-batch leaf ingestion for the
//!   hot bus path, and the per-source forest that fleet shards merge at
//!   checkpoints.

use std::collections::BTreeMap;
use std::fmt;

/// Domain-separation tags, mixed into the hasher flags so a leaf can
/// never collide with an interior node, a bagged root, or a forest
/// root over the same bytes.
const DOMAIN_LEAF: u32 = 0;
const DOMAIN_PARENT: u32 = 1;
const DOMAIN_ROOT: u32 = 2;
const DOMAIN_FOREST: u32 = 3;

// ---- vendored Blake3-style digest ----

const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

const MSG_PERMUTATION: [usize; 16] = [2, 6, 3, 10, 7, 0, 4, 13, 1, 11, 12, 5, 9, 14, 15, 8];

#[inline(always)]
fn g(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, mx: u32, my: u32) {
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(mx);
    state[d] = (state[d] ^ state[a]).rotate_right(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(12);
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(my);
    state[d] = (state[d] ^ state[a]).rotate_right(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(7);
}

#[inline(always)]
fn round(state: &mut [u32; 16], m: &[u32; 16]) {
    g(state, 0, 4, 8, 12, m[0], m[1]);
    g(state, 1, 5, 9, 13, m[2], m[3]);
    g(state, 2, 6, 10, 14, m[4], m[5]);
    g(state, 3, 7, 11, 15, m[6], m[7]);
    g(state, 0, 5, 10, 15, m[8], m[9]);
    g(state, 1, 6, 11, 12, m[10], m[11]);
    g(state, 2, 7, 8, 13, m[12], m[13]);
    g(state, 3, 4, 9, 14, m[14], m[15]);
}

#[inline(always)]
fn permute(m: &mut [u32; 16]) {
    let mut p = [0u32; 16];
    for i in 0..16 {
        p[i] = m[MSG_PERMUTATION[i]];
    }
    *m = p;
}

/// The BLAKE3 compression function: 7 rounds of the ChaCha-derived
/// quarter-round over an 8-word chaining value, a 16-word message
/// block, a block counter and flags, feeding the halves forward.
fn compress(
    cv: &[u32; 8],
    block: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 8] {
    let mut state = [
        cv[0],
        cv[1],
        cv[2],
        cv[3],
        cv[4],
        cv[5],
        cv[6],
        cv[7],
        IV[0],
        IV[1],
        IV[2],
        IV[3],
        counter as u32,
        (counter >> 32) as u32,
        block_len,
        flags,
    ];
    let mut m = *block;
    for r in 0..7 {
        round(&mut state, &m);
        if r < 6 {
            permute(&mut m);
        }
    }
    let mut out = [0u32; 8];
    for i in 0..8 {
        out[i] = state[i] ^ state[i + 8];
    }
    out
}

/// A 32-byte digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash(pub [u8; 32]);

impl Hash {
    /// Lowercase hex of the full digest.
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Eight hex chars identify a root in failure reports without
        // drowning them; `to_hex` prints the whole digest.
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// An incremental Blake3-style hasher.
///
/// This vendors the BLAKE3 *compression function* verbatim (IV, message
/// permutation, G rotations, 7 rounds) but chains 64-byte blocks
/// sequentially, BLAKE2-style, instead of reproducing BLAKE3's chunk
/// tree — so digests are **not** interchangeable with the reference
/// `blake3` crate. The accumulator only needs collision resistance,
/// determinism and domain separation, not cross-implementation
/// compatibility, and the sequential form keeps the vendored code
/// small enough to audit.
pub struct Hasher {
    cv: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    blocks: u64,
    flags: u32,
}

impl Hasher {
    fn with_domain(domain: u32) -> Self {
        Hasher { cv: IV, buf: [0; 64], buf_len: 0, blocks: 0, flags: domain << 8 }
    }

    /// A hasher in the leaf domain, for ad-hoc digests.
    pub fn new() -> Self {
        Self::with_domain(DOMAIN_LEAF)
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) -> &mut Self {
        while !data.is_empty() {
            if self.buf_len == 64 {
                let block = words_of(&self.buf);
                self.cv = compress(&self.cv, &block, self.blocks, 64, self.flags);
                self.blocks += 1;
                self.buf_len = 0;
            }
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
        }
        self
    }

    /// Finalizes into a digest. The last block carries a finalization
    /// flag bit and the true byte length, so `update(a); update(b)`
    /// equals `update(ab)` but no prefix of a stream shares its digest.
    pub fn finalize(&self) -> Hash {
        let mut last = [0u8; 64];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        let block = words_of(&last);
        let cv = compress(&self.cv, &block, self.blocks, self.buf_len as u32, self.flags | 1);
        let mut out = [0u8; 32];
        for (i, w) in cv.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        Hash(out)
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[inline(always)]
fn words_of(block: &[u8; 64]) -> [u32; 16] {
    let mut m = [0u32; 16];
    for (i, w) in m.iter_mut().enumerate() {
        *w = u32::from_le_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    m
}

/// Hashes raw entry bytes into a leaf.
pub fn leaf_hash(entry: &[u8]) -> Hash {
    Hasher::with_domain(DOMAIN_LEAF).update(entry).finalize()
}

fn parent_hash(left: &Hash, right: &Hash) -> Hash {
    Hasher::with_domain(DOMAIN_PARENT).update(&left.0).update(&right.0).finalize()
}

/// FNV-1a over a word slice — the cheap per-entry checksum the bus
/// trace uses for block payloads (the MMR leaf hash covers it).
pub fn fnv1a_words(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    }
    h
}

// ---- the accumulator ----

/// Node-array position of leaf `i` (post-order mountain layout): every
/// complete left subtree of `i` leaves contributes `2i - popcount(i)`
/// nodes before the leaf itself.
fn leaf_pos(i: u64) -> u64 {
    2 * i - i.count_ones() as u64
}

/// A Merkle Mountain Range accumulator.
///
/// Created [`retained`](Mmr::retained) (keeps the full post-order node
/// array: supports [`bisect_divergence`], [`Mmr::leaf_hash_at`] and
/// segment replay via [`Mmr::append`]) or
/// [`streaming`](Mmr::streaming) (keeps only the peaks stack — at most
/// 64 hashes regardless of leaf count, for million-op replays in
/// O(peaks) memory).
#[derive(Clone, Debug, Default)]
pub struct Mmr {
    leaves: u64,
    /// Current peaks as `(height, hash)`, strictly decreasing height.
    peaks: Vec<(u32, Hash)>,
    /// Post-order node array (retained mode only).
    nodes: Option<Vec<Hash>>,
}

impl Mmr {
    /// An empty accumulator that retains its node array.
    pub fn retained() -> Self {
        Mmr { leaves: 0, peaks: Vec::new(), nodes: Some(Vec::new()) }
    }

    /// An empty peaks-only accumulator: O(log N) memory, root compare
    /// only (no bisection, no segment replay out of it).
    pub fn streaming() -> Self {
        Mmr { leaves: 0, peaks: Vec::new(), nodes: None }
    }

    /// Whether the node array is retained.
    pub fn is_retained(&self) -> bool {
        self.nodes.is_some()
    }

    /// Number of leaves appended.
    pub fn leaves(&self) -> u64 {
        self.leaves
    }

    /// Current peaks as `(height, hash)`, highest first.
    pub fn peaks(&self) -> &[(u32, Hash)] {
        &self.peaks
    }

    /// Appends one leaf hash: push a height-0 peak, then merge
    /// equal-height neighbours like binary-increment carries. O(1)
    /// amortized, zero rotations; the node array only ever grows.
    pub fn push_leaf(&mut self, h: Hash) {
        if let Some(nodes) = &mut self.nodes {
            nodes.push(h);
        }
        self.peaks.push((0, h));
        while self.peaks.len() >= 2 {
            let (rh, right) = self.peaks[self.peaks.len() - 1];
            let (lh, left) = self.peaks[self.peaks.len() - 2];
            if lh != rh {
                break;
            }
            let parent = parent_hash(&left, &right);
            self.peaks.pop();
            self.peaks.pop();
            if let Some(nodes) = &mut self.nodes {
                nodes.push(parent);
            }
            self.peaks.push((lh + 1, parent));
        }
        self.leaves += 1;
    }

    /// Reserves room for `extra` more leaves (retained mode: the node
    /// array holds strictly fewer than `2 × leaves` nodes).
    pub fn reserve(&mut self, extra: usize) {
        if let Some(nodes) = &mut self.nodes {
            nodes.reserve(extra * 2);
        }
    }

    /// The root: all peaks bagged together with the leaf count under a
    /// distinct domain, so e.g. a 2-leaf range and its own 1-node peak
    /// can't alias. Equal roots ⇔ equal leaf streams.
    pub fn root(&self) -> Hash {
        let mut h = Hasher::with_domain(DOMAIN_ROOT);
        h.update(&self.leaves.to_le_bytes());
        for (_, peak) in &self.peaks {
            h.update(&peak.0);
        }
        h.finalize()
    }

    /// The hash of leaf `i` (retained mode).
    ///
    /// # Panics
    ///
    /// Panics if `i >= leaves()` or in streaming mode.
    pub fn leaf_hash_at(&self, i: u64) -> Hash {
        assert!(i < self.leaves, "leaf {i} out of range ({} leaves)", self.leaves);
        self.nodes_ref()[leaf_pos(i) as usize]
    }

    /// Replays every leaf of a retained `segment` into `self`, so
    /// segment-wise accumulation equals accumulating the concatenated
    /// stream (drain cadence can't change the root).
    ///
    /// # Panics
    ///
    /// Panics if `segment` is streaming — its leaves are gone.
    pub fn append(&mut self, segment: &Mmr) {
        assert!(segment.is_retained(), "cannot replay a streaming segment: leaves were dropped");
        self.reserve(segment.leaves as usize);
        for i in 0..segment.leaves {
            self.push_leaf(segment.leaf_hash_at(i));
        }
    }

    /// Bytes retained by the accumulator (capacity, not length — this
    /// is the number the streaming-mode memory bound is about).
    pub fn retained_bytes(&self) -> usize {
        let nodes = self.nodes.as_ref().map_or(0, |n| n.capacity() * 32);
        nodes + self.peaks.capacity() * std::mem::size_of::<(u32, Hash)>()
    }

    fn nodes_ref(&self) -> &[Hash] {
        self.nodes.as_deref().expect("retained mode required (Mmr::retained)")
    }

    /// Positions of the peak roots covering the first `n` leaves, as
    /// `(height, leaf_base, node_pos)`, highest peak first. By the
    /// prefix property these positions are valid (and final) in any
    /// accumulator with at least `n` leaves.
    fn peak_positions(n: u64) -> Vec<(u32, u64, u64)> {
        let mut out = Vec::new();
        let mut base = 0u64;
        for h in (0..64).rev() {
            if n & (1 << h) != 0 {
                let pos = leaf_pos(base) + (2u64 << h) - 2;
                out.push((h, base, pos));
                base += 1 << h;
            }
        }
        out
    }
}

/// A located divergence between two leaf streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first differing leaf (or the first leaf past the
    /// common prefix, when one stream is a proper prefix of the other).
    pub leaf: u64,
    /// Hash compares spent locating it — O(log N), the point of the
    /// exercise.
    pub compares: u64,
}

/// Locates the first divergent leaf between two retained accumulators
/// in O(log N) hash compares: compare the peaks covering the common
/// prefix left to right; inside the first differing peak, descend by
/// comparing left children (equal left ⇒ the divergence is on the
/// right, because the parents differ).
///
/// Returns `None` when the streams are identical. If the compared
/// prefixes are equal but the lengths differ, the divergence is the
/// first leaf past the shorter stream.
///
/// # Panics
///
/// Panics if either accumulator is streaming — re-replay in retained
/// mode to bisect (the replay is deterministic, so this costs one more
/// pass only on the failing case).
pub fn bisect_divergence(a: &Mmr, b: &Mmr) -> Option<Divergence> {
    let (an, bn) = (a.nodes_ref(), b.nodes_ref());
    let n = a.leaves.min(b.leaves);
    let mut compares = 0u64;
    for (height, base, pos) in Mmr::peak_positions(n) {
        compares += 1;
        if an[pos as usize] == bn[pos as usize] {
            continue;
        }
        // Descend: at each level compare the left child only.
        let (mut h, mut base, mut pos) = (height, base, pos);
        while h > 0 {
            let left = pos - (2u64 << (h - 1));
            compares += 1;
            if an[left as usize] == bn[left as usize] {
                base += 1 << (h - 1); // left halves agree: go right
                pos -= 1;
            } else {
                pos = left;
            }
            h -= 1;
        }
        return Some(Divergence { leaf: base, compares });
    }
    if a.leaves == b.leaves {
        None
    } else {
        Some(Divergence { leaf: n, compares })
    }
}

/// The first divergent leaf by linear scan — the O(N) comparator the
/// bisection must agree with (used by the sensitivity tests and the
/// before/after benches).
pub fn linear_divergence(a: &Mmr, b: &Mmr) -> Option<u64> {
    let n = a.leaves.min(b.leaves);
    (0..n).find(|&i| a.leaf_hash_at(i) != b.leaf_hash_at(i)).or(if a.leaves == b.leaves {
        None
    } else {
        Some(n)
    })
}

// ---- deferred-batch ingestion ----

/// Default fold watermark: pending raw entries fold into leaves when
/// either bound is hit, so an untraced-feeling bump-append hot path
/// still can't grow unboundedly between [`Checkpoint::drain`]-style
/// flush points.
///
/// [`Checkpoint::drain`]: crate::Checkpoint::drain
const WATERMARK_ENTRIES: usize = 1024;
const WATERMARK_BYTES: usize = 64 * 1024;

/// An MMR fed by raw entry bytes with deferred, batched hashing.
///
/// The hot path ([`MmrLog::push`]) is a plain bump-append into a byte
/// arena — no hashing, no per-entry allocation. Entries materialize
/// into leaves in batches at [`MmrLog::fold`], [`MmrLog::root`],
/// [`MmrLog::take_segment`] (checkpoint drains) or when the pending
/// arena crosses a size watermark — never per-op.
#[derive(Clone, Debug)]
pub struct MmrLog {
    mmr: Mmr,
    /// Concatenated raw bytes of pending entries.
    pending: Vec<u8>,
    /// End offset of each pending entry within `pending`.
    bounds: Vec<u32>,
    watermark_entries: usize,
    watermark_bytes: usize,
}

impl MmrLog {
    /// An empty log; `retain` chooses the accumulator mode.
    pub fn new(retain: bool) -> Self {
        MmrLog {
            mmr: if retain { Mmr::retained() } else { Mmr::streaming() },
            pending: Vec::new(),
            bounds: Vec::new(),
            watermark_entries: WATERMARK_ENTRIES,
            watermark_bytes: WATERMARK_BYTES,
        }
    }

    /// Overrides the fold watermark (tests pin small values to exercise
    /// mid-stream folds).
    pub fn with_watermark(mut self, entries: usize, bytes: usize) -> Self {
        self.watermark_entries = entries.max(1);
        self.watermark_bytes = bytes;
        self
    }

    /// Appends one raw entry: two bump-appends and a bounds check. The
    /// watermark fold amortizes to O(1) hash work per entry.
    pub fn push(&mut self, entry: &[u8]) {
        self.pending.extend_from_slice(entry);
        self.bounds.push(self.pending.len() as u32);
        if self.bounds.len() >= self.watermark_entries || self.pending.len() >= self.watermark_bytes
        {
            self.fold();
        }
    }

    /// Hashes every pending entry into a leaf, in order, and clears the
    /// arena (keeping its capacity).
    pub fn fold(&mut self) {
        self.mmr.reserve(self.bounds.len());
        let mut start = 0usize;
        for &end in &self.bounds {
            self.mmr.push_leaf(leaf_hash(&self.pending[start..end as usize]));
            start = end as usize;
        }
        self.pending.clear();
        self.bounds.clear();
    }

    /// Total entries appended (folded or pending) — O(1), no scan.
    pub fn len(&self) -> u64 {
        self.mmr.leaves + self.bounds.len() as u64
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Preallocates for `entries` more entries of roughly `entry_bytes`
    /// each, so steady-state appends never reallocate.
    pub fn reserve(&mut self, entries: usize, entry_bytes: usize) {
        let entries = entries.min(self.watermark_entries);
        self.bounds.reserve(entries);
        self.pending.reserve(entries * entry_bytes);
    }

    /// Folds and returns the root.
    pub fn root(&mut self) -> Hash {
        self.fold();
        self.mmr.root()
    }

    /// Folds and exposes the accumulator.
    pub fn mmr(&mut self) -> &Mmr {
        self.fold();
        &self.mmr
    }

    /// Folds and takes the accumulated segment, leaving the log empty
    /// in the same mode — the checkpoint-drain primitive: per-drain
    /// segments [`Mmr::append`]ed elsewhere reproduce the root of the
    /// undrained stream, and retained memory resets to the drain
    /// cadence instead of the replay length.
    pub fn take_segment(&mut self) -> Mmr {
        self.fold();
        let empty = if self.mmr.is_retained() { Mmr::retained() } else { Mmr::streaming() };
        std::mem::replace(&mut self.mmr, empty)
    }

    /// Bytes retained (accumulator + pending arena capacities).
    pub fn retained_bytes(&self) -> usize {
        self.mmr.retained_bytes() + self.pending.capacity() + self.bounds.capacity() * 4
    }
}

impl Default for MmrLog {
    fn default() -> Self {
        Self::new(false)
    }
}

// ---- the per-source forest ----

/// A forest of MMRs keyed by source id (fleet: one per instance).
///
/// Shards accumulate traces per instance and merge forests at join
/// points. Because an instance lives on exactly one shard, a fleet
/// merge is a disjoint union — commutative and cadence-independent —
/// and the forest root authenticates every instance's whole trace in
/// one 32-byte compare.
#[derive(Clone, Debug, Default)]
pub struct MmrForest {
    trees: BTreeMap<u64, Mmr>,
    retain: bool,
}

impl MmrForest {
    /// An empty forest; `retain` chooses the mode of trees it grows.
    pub fn new(retain: bool) -> Self {
        MmrForest { trees: BTreeMap::new(), retain }
    }

    /// Replays a retained `segment` onto source `id`'s tree (created on
    /// first use).
    pub fn append_segment(&mut self, id: u64, segment: &Mmr) {
        let retain = self.retain;
        self.trees
            .entry(id)
            .or_insert_with(|| if retain { Mmr::retained() } else { Mmr::streaming() })
            .append(segment);
    }

    /// Merges another forest in. Disjoint ids move over untouched; a
    /// shared id replays `other`'s tree after `self`'s, which requires
    /// `other` to retain leaves.
    pub fn merge(&mut self, other: MmrForest) {
        for (id, tree) in other.trees {
            match self.trees.entry(id) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(tree);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut().append(&tree);
                }
            }
        }
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Source `id`'s tree, if any.
    pub fn tree(&self, id: u64) -> Option<&Mmr> {
        self.trees.get(&id)
    }

    /// `(id, leaves, root)` per source, in id order — the gate's
    /// per-instance diagnostic when forest roots mismatch.
    pub fn roots(&self) -> impl Iterator<Item = (u64, u64, Hash)> + '_ {
        self.trees.iter().map(|(&id, t)| (id, t.leaves(), t.root()))
    }

    /// One digest over every source's `(id, leaves, root)` in id order.
    pub fn root(&self) -> Hash {
        let mut h = Hasher::with_domain(DOMAIN_FOREST);
        h.update(&(self.trees.len() as u64).to_le_bytes());
        for (id, leaves, root) in self.roots() {
            h.update(&id.to_le_bytes());
            h.update(&leaves.to_le_bytes());
            h.update(&root.0);
        }
        h.finalize()
    }

    /// Bytes retained across all trees.
    pub fn retained_bytes(&self) -> usize {
        self.trees.values().map(Mmr::retained_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: u64) -> Vec<Hash> {
        (0..n).map(|i| leaf_hash(&i.to_le_bytes())).collect()
    }

    fn mmr_of(hashes: &[Hash]) -> Mmr {
        let mut m = Mmr::retained();
        for &h in hashes {
            m.push_leaf(h);
        }
        m
    }

    #[test]
    fn digest_is_deterministic_and_separates_domains() {
        let a = leaf_hash(b"hello");
        assert_eq!(a, leaf_hash(b"hello"));
        assert_ne!(a, leaf_hash(b"hellp"));
        assert_ne!(a, leaf_hash(b"hell"));
        // Same 64 bytes hashed as leaf vs parent vs root must differ.
        let h = leaf_hash(b"x");
        let p = parent_hash(&h, &h);
        let mut r = Hasher::with_domain(DOMAIN_ROOT);
        r.update(&h.0).update(&h.0);
        assert_ne!(p, r.finalize());
    }

    #[test]
    fn digest_streams_independent_of_chunking() {
        let mut one = Hasher::new();
        one.update(b"abcdefghij".repeat(20).as_slice());
        let mut many = Hasher::new();
        for _ in 0..20 {
            many.update(b"abcde").update(b"fghij");
        }
        assert_eq!(one.finalize(), many.finalize());
    }

    #[test]
    fn digest_avalanches_across_block_boundaries() {
        // >64 bytes exercises the chaining path; a flip in either block
        // must change the digest.
        let mut data = vec![7u8; 150];
        let base = leaf_hash(&data);
        for i in [0usize, 63, 64, 100, 149] {
            data[i] ^= 1;
            assert_ne!(base, leaf_hash(&data), "flip at {i}");
            data[i] ^= 1;
        }
        assert_eq!(base, leaf_hash(&data));
    }

    #[test]
    fn peaks_follow_the_binary_representation() {
        let mut m = Mmr::streaming();
        for (i, h) in leaves(100).into_iter().enumerate() {
            m.push_leaf(h);
            let n = i as u64 + 1;
            assert_eq!(m.peaks().len(), n.count_ones() as usize, "n={n}");
            let heights: Vec<u32> = m.peaks().iter().map(|&(h, _)| h).collect();
            let expect: Vec<u32> = (0..64).rev().filter(|&b| n & (1 << b) != 0).collect();
            assert_eq!(heights, expect, "n={n}");
        }
    }

    #[test]
    fn roots_are_deterministic_and_length_separated() {
        let ls = leaves(9);
        assert_eq!(mmr_of(&ls).root(), mmr_of(&ls).root());
        assert_ne!(mmr_of(&ls).root(), mmr_of(&ls[..8]).root());
        // One leaf differs → different root.
        let mut other = ls.clone();
        other[4] = leaf_hash(b"mutant");
        assert_ne!(mmr_of(&ls).root(), mmr_of(&other).root());
    }

    #[test]
    fn streaming_and_retained_roots_agree() {
        let ls = leaves(77);
        let mut s = Mmr::streaming();
        for &h in &ls {
            s.push_leaf(h);
        }
        assert_eq!(s.root(), mmr_of(&ls).root());
        assert!(s.retained_bytes() < 64 * 40, "streaming keeps only the peaks stack");
    }

    #[test]
    fn prefix_property() {
        // The node array for k leaves is a prefix of the array for n>k:
        // the foundation under cross-length bisection.
        let ls = leaves(33);
        let full = mmr_of(&ls);
        for k in [1u64, 2, 3, 8, 21, 32] {
            let part = mmr_of(&ls[..k as usize]);
            let (fnodes, pnodes) = (full.nodes_ref(), part.nodes_ref());
            assert_eq!(&fnodes[..pnodes.len()], pnodes, "k={k}");
        }
    }

    #[test]
    fn leaf_positions_recover_every_leaf() {
        let ls = leaves(50);
        let m = mmr_of(&ls);
        for (i, &h) in ls.iter().enumerate() {
            assert_eq!(m.leaf_hash_at(i as u64), h);
        }
    }

    #[test]
    fn bisect_finds_every_single_leaf_mutation() {
        for n in [1u64, 2, 3, 7, 8, 31, 64, 100] {
            let ls = leaves(n);
            let reference = mmr_of(&ls);
            for k in 0..n {
                let mut mutated = ls.clone();
                mutated[k as usize] = leaf_hash(&[0xEE, k as u8]);
                let m = mmr_of(&mutated);
                let d = bisect_divergence(&reference, &m).expect("roots differ");
                assert_eq!(d.leaf, k, "n={n}");
                assert_eq!(Some(k), linear_divergence(&reference, &m));
                let bound = 2 * (64 - n.leading_zeros() as u64) + 2;
                assert!(d.compares <= bound, "n={n} k={k}: {} compares > {bound}", d.compares);
            }
        }
    }

    #[test]
    fn bisect_handles_prefix_streams_and_equality() {
        let ls = leaves(21);
        let full = mmr_of(&ls);
        let part = mmr_of(&ls[..13]);
        assert_eq!(bisect_divergence(&full, &full), None);
        let d = bisect_divergence(&part, &full).expect("lengths differ");
        assert_eq!(d.leaf, 13, "divergence is the first leaf past the common prefix");
        assert_eq!(Some(13), linear_divergence(&part, &full));
    }

    #[test]
    fn segment_appends_reproduce_the_whole_stream() {
        let ls = leaves(45);
        let whole = mmr_of(&ls);
        for cut in [1usize, 7, 16, 44] {
            let mut m = Mmr::retained();
            m.append(&mmr_of(&ls[..cut]));
            m.append(&mmr_of(&ls[cut..]));
            assert_eq!(m.root(), whole.root(), "cut={cut}");
        }
    }

    #[test]
    fn log_defers_hashing_until_fold_points() {
        let mut log = MmrLog::new(true).with_watermark(4, usize::MAX);
        for i in 0..6u64 {
            log.push(&i.to_le_bytes());
        }
        // Watermark fired once at 4 entries; 2 still pending.
        assert_eq!(log.mmr.leaves(), 4);
        assert_eq!(log.len(), 6);
        let root = log.root();
        assert_eq!(log.mmr.leaves(), 6);
        // Same entries, eager watermark: identical root.
        let mut eager = MmrLog::new(true).with_watermark(1, usize::MAX);
        for i in 0..6u64 {
            eager.push(&i.to_le_bytes());
        }
        assert_eq!(eager.root(), root);
    }

    #[test]
    fn log_segments_drain_like_checkpoints() {
        let mut contiguous = MmrLog::new(true);
        let mut drained = MmrLog::new(true);
        let mut acc = Mmr::retained();
        for i in 0..300u64 {
            contiguous.push(&i.to_le_bytes());
            drained.push(&i.to_le_bytes());
            if i % 64 == 0 {
                acc.append(&drained.take_segment());
            }
        }
        acc.append(&drained.take_segment());
        assert_eq!(acc.root(), contiguous.root());
        assert_eq!(drained.len(), 0, "drained log restarts empty");
    }

    #[test]
    fn forest_merge_is_a_disjoint_union() {
        let ls = leaves(30);
        let mut a = MmrForest::new(false);
        let mut b = MmrForest::new(false);
        a.append_segment(1, &mmr_of(&ls[..10]));
        b.append_segment(2, &mmr_of(&ls[10..20]));
        b.append_segment(3, &mmr_of(&ls[20..]));
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab.root(), ba.root(), "disjoint merge commutes");
        assert_eq!(ab.len(), 3);
    }

    #[test]
    fn forest_merge_with_shared_ids_replays_in_order() {
        let ls = leaves(20);
        let mut a = MmrForest::new(true);
        a.append_segment(7, &mmr_of(&ls[..8]));
        let mut b = MmrForest::new(true);
        b.append_segment(7, &mmr_of(&ls[8..]));
        a.merge(b);
        let mut whole = MmrForest::new(true);
        whole.append_segment(7, &mmr_of(&ls));
        assert_eq!(a.root(), whole.root());
    }

    #[test]
    fn forest_root_distinguishes_ids() {
        let ls = leaves(4);
        let mut a = MmrForest::new(false);
        a.append_segment(1, &mmr_of(&ls));
        let mut b = MmrForest::new(false);
        b.append_segment(2, &mmr_of(&ls));
        assert_ne!(a.root(), b.root());
    }
}
