//! The system bus: address claims, access dispatch, cost accounting.
//!
//! Drivers talk to devices exclusively through a [`Bus`]: port I/O
//! (`inb`/`outb` and friends), block string operations (`insw`/`outsw`,
//! modelling x86 `rep ins`/`rep outs`), and memory-mapped access. Every
//! operation is charged to the [`Ledger`] and the [`SimClock`], which is
//! what the experiment harnesses measure.

use crate::clock::{CostModel, SimClock};
use crate::device::Device;
use crate::ledger::Ledger;
use crate::mmr::{self, Hash, Mmr, MmrLog};
use crate::width::Width;

/// An address-range claim registered by a device.
#[derive(Debug)]
struct Claim {
    base: u64,
    len: u64,
    device: usize,
}

impl Claim {
    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }
}

/// The simulated system bus.
pub struct Bus {
    devices: Vec<Box<dyn Device>>,
    io_claims: Vec<Claim>,
    mem_claims: Vec<Claim>,
    ledger: Ledger,
    clock: SimClock,
    costs: CostModel,
    /// Panic on accesses to unclaimed addresses instead of returning
    /// floating-bus values. Useful in tests.
    strict: bool,
    /// Authenticated trace: one [`MmrLog`] entry per bus transaction
    /// when enabled. `None` (the default) keeps the hot path at a
    /// single branch per op.
    trace: Option<Box<MmrLog>>,
}

/// Trace entry kinds; an unclaimed access sets [`TRACE_UNCLAIMED`] on
/// its kind rather than appending a second entry, so a traced bus
/// appends exactly [`Ledger::len`] entries.
const TRACE_IO_READ: u8 = 0;
const TRACE_IO_WRITE: u8 = 1;
const TRACE_BLOCK_IN: u8 = 2;
const TRACE_BLOCK_OUT: u8 = 3;
const TRACE_MEM_READ: u8 = 4;
const TRACE_MEM_WRITE: u8 = 5;
const TRACE_DMA: u8 = 6;
/// Flag bit marking an access to an unclaimed address.
pub const TRACE_UNCLAIMED: u8 = 0x80;
/// Fixed raw size of one trace entry: kind, width, address, and two
/// payload words (value, or block length + payload checksum).
const TRACE_ENTRY_BYTES: usize = 26;

/// Handle to a device attached to a [`Bus`], for typed re-borrowing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceId(usize);

impl Default for Bus {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl Bus {
    /// Creates an empty bus with the given cost model.
    pub fn new(costs: CostModel) -> Self {
        Bus {
            devices: Vec::new(),
            io_claims: Vec::new(),
            mem_claims: Vec::new(),
            ledger: Ledger::new(),
            clock: SimClock::new(),
            costs,
            strict: false,
            trace: None,
        }
    }

    /// Makes unclaimed accesses panic (for tests). Default: they count
    /// in the ledger and reads return all-ones, like a floating bus.
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Attaches a device with no address claims (claims can be added
    /// afterwards with [`Bus::claim_io`] / [`Bus::claim_mem`]).
    pub fn attach(&mut self, dev: Box<dyn Device>) -> DeviceId {
        self.devices.push(dev);
        DeviceId(self.devices.len() - 1)
    }

    /// Attaches a device and claims `len` port addresses at `base`.
    pub fn attach_io(&mut self, dev: Box<dyn Device>, base: u64, len: u64) -> DeviceId {
        let id = self.attach(dev);
        self.claim_io(id, base, len);
        id
    }

    /// Attaches a device and claims `len` bytes of memory space at `base`.
    pub fn attach_mem(&mut self, dev: Box<dyn Device>, base: u64, len: u64) -> DeviceId {
        let id = self.attach(dev);
        self.claim_mem(id, base, len);
        id
    }

    /// Adds a port-space claim for an attached device.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing claim — simulated
    /// machines are configured statically and an overlap is a harness
    /// bug.
    pub fn claim_io(&mut self, id: DeviceId, base: u64, len: u64) {
        assert!(
            !self.io_claims.iter().any(|c| base < c.base + c.len && c.base < base + len),
            "overlapping I/O claim at {base:#x}"
        );
        self.io_claims.push(Claim { base, len, device: id.0 });
    }

    /// Adds a memory-space claim for an attached device.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing claim.
    pub fn claim_mem(&mut self, id: DeviceId, base: u64, len: u64) {
        assert!(
            !self.mem_claims.iter().any(|c| base < c.base + c.len && c.base < base + len),
            "overlapping memory claim at {base:#x}"
        );
        self.mem_claims.push(Claim { base, len, device: id.0 });
    }

    /// Borrows an attached device for direct inspection (tests and
    /// harnesses; drivers must go through bus accesses).
    pub fn device_mut(&mut self, id: DeviceId) -> &mut dyn Device {
        self.devices[id.0].as_mut()
    }

    // ---- measurement ----

    /// The cumulative operation ledger.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.clock.now_ns()
    }

    /// Advances simulated time without bus traffic (e.g. the driver
    /// sleeping while waiting for an interrupt) and ticks devices.
    pub fn idle(&mut self, ns: f64) {
        self.clock.advance(ns);
        let now = self.clock.now_ns();
        for d in &mut self.devices {
            d.tick(now);
        }
    }

    // ---- authenticated trace ----

    /// Turns on the authenticated trace: from now on every bus
    /// transaction bump-appends one fixed-size entry into an
    /// [`MmrLog`]; hashing is deferred to fold points (watermark,
    /// [`Bus::trace_root`], [`Bus::drain_trace_segment`]), never
    /// per-op. `retain` keeps leaf/node hashes for bisection and
    /// segment replay; `false` streams in O(peaks) memory.
    pub fn enable_trace(&mut self, retain: bool) {
        let mut log = MmrLog::new(retain);
        // One entry is 26 bytes; size the arena for a full batch.
        log.reserve(1024, TRACE_ENTRY_BYTES);
        self.trace = Some(Box::new(log));
    }

    /// Stops tracing and drops the log.
    pub fn disable_trace(&mut self) {
        self.trace = None;
    }

    /// The trace log, if tracing is enabled.
    pub fn trace(&self) -> Option<&MmrLog> {
        self.trace.as_deref()
    }

    /// Folds pending entries and returns the trace root.
    pub fn trace_root(&mut self) -> Option<Hash> {
        self.trace.as_deref_mut().map(MmrLog::root)
    }

    /// Folds and takes the accumulated trace segment, leaving the
    /// trace empty — the checkpoint-drain hook: a fleet shard appends
    /// drained segments into its per-instance forest, keeping retained
    /// memory bounded by the drain cadence.
    pub fn drain_trace_segment(&mut self) -> Option<Mmr> {
        self.trace.as_deref_mut().map(MmrLog::take_segment)
    }

    #[inline]
    fn trace_op(&mut self, kind: u8, width: Width, addr: u64, a: u64, b: u64) {
        if let Some(t) = self.trace.as_deref_mut() {
            let mut e = [0u8; TRACE_ENTRY_BYTES];
            e[0] = kind;
            e[1] = width.bytes() as u8;
            e[2..10].copy_from_slice(&addr.to_le_bytes());
            e[10..18].copy_from_slice(&a.to_le_bytes());
            e[18..26].copy_from_slice(&b.to_le_bytes());
            t.push(&e);
        }
    }

    /// The bus cost model.
    pub fn costs(&self) -> CostModel {
        self.costs
    }

    /// Replaces the cost model (harnesses sweep calibrations).
    pub fn set_costs(&mut self, costs: CostModel) {
        self.costs = costs;
    }

    // ---- port I/O ----

    fn io_lookup(&self, addr: u64) -> Option<(usize, u64)> {
        self.io_claims.iter().find(|c| c.contains(addr)).map(|c| (c.device, addr - c.base))
    }

    fn mem_lookup(&self, addr: u64) -> Option<(usize, u64)> {
        self.mem_claims.iter().find(|c| c.contains(addr)).map(|c| (c.device, addr - c.base))
    }

    fn tick_device(&mut self, idx: usize) {
        let now = self.clock.now_ns();
        self.devices[idx].tick(now);
    }

    /// Generic port read.
    pub fn io_read(&mut self, addr: u64, width: Width) -> u64 {
        self.clock.advance(self.costs.io_single_ns);
        self.ledger.count_in(width);
        let (value, kind) = match self.io_lookup(addr) {
            Some((idx, off)) => {
                self.tick_device(idx);
                (width.truncate(self.devices[idx].io_read(off, width)), TRACE_IO_READ)
            }
            None => {
                self.unclaimed(addr, "port read");
                (width.ones(), TRACE_IO_READ | TRACE_UNCLAIMED)
            }
        };
        self.trace_op(kind, width, addr, value, 0);
        value
    }

    /// Generic port write.
    pub fn io_write(&mut self, addr: u64, value: u64, width: Width) {
        self.clock.advance(self.costs.io_single_ns);
        self.ledger.count_out(width);
        let kind = match self.io_lookup(addr) {
            Some((idx, off)) => {
                self.tick_device(idx);
                self.devices[idx].io_write(off, width.truncate(value), width);
                TRACE_IO_WRITE
            }
            None => {
                self.unclaimed(addr, "port write");
                TRACE_IO_WRITE | TRACE_UNCLAIMED
            }
        };
        self.trace_op(kind, width, addr, width.truncate(value), 0);
    }

    /// 8-bit port read (`inb`).
    pub fn inb(&mut self, addr: u64) -> u8 {
        self.io_read(addr, Width::W8) as u8
    }

    /// 8-bit port write (`outb`).
    pub fn outb(&mut self, addr: u64, v: u8) {
        self.io_write(addr, v as u64, Width::W8);
    }

    /// 16-bit port read (`inw`).
    pub fn inw(&mut self, addr: u64) -> u16 {
        self.io_read(addr, Width::W16) as u16
    }

    /// 16-bit port write (`outw`).
    pub fn outw(&mut self, addr: u64, v: u16) {
        self.io_write(addr, v as u64, Width::W16);
    }

    /// 32-bit port read (`inl`).
    pub fn inl(&mut self, addr: u64) -> u32 {
        self.io_read(addr, Width::W32) as u32
    }

    /// 32-bit port write (`outl`).
    pub fn outl(&mut self, addr: u64, v: u32) {
        self.io_write(addr, v as u64, Width::W32);
    }

    /// Block string input (`rep insw`-style): reads `buf.len()` words of
    /// `width` from one port into `buf`. Charged at block rates.
    ///
    /// A zero-length transfer is a true no-op: `rep` with `ecx == 0`
    /// issues no bus cycles, so nothing is charged and no `block_ops`
    /// entry is recorded. Unclaimed non-empty transfers still count
    /// their words — the bus cycles happen even if only a floating bus
    /// answers, matching the single-op accounting above.
    pub fn ins(&mut self, addr: u64, width: Width, buf: &mut [u64]) {
        if buf.is_empty() {
            return;
        }
        self.clock
            .advance(self.costs.io_block_setup_ns + self.costs.io_block_word_ns * buf.len() as f64);
        self.ledger.block_ops += 1;
        self.ledger.block_in_words += buf.len() as u64;
        let kind = match self.io_lookup(addr) {
            Some((idx, off)) => {
                self.tick_device(idx);
                let dev = &mut self.devices[idx];
                for slot in buf.iter_mut() {
                    *slot = width.truncate(dev.io_read(off, width));
                }
                TRACE_BLOCK_IN
            }
            None => {
                self.unclaimed(addr, "block port read");
                buf.fill(width.ones());
                TRACE_BLOCK_IN | TRACE_UNCLAIMED
            }
        };
        if self.trace.is_some() {
            // One entry per block instruction, like the ledger: the
            // payload is covered by length + checksum, computed only
            // when tracing is on.
            let ck = mmr::fnv1a_words(buf);
            self.trace_op(kind, width, addr, buf.len() as u64, ck);
        }
    }

    /// Block string output (`rep outsw`-style). Zero-length transfers
    /// are no-ops and unclaimed words count, as for [`Bus::ins`].
    pub fn outs(&mut self, addr: u64, width: Width, buf: &[u64]) {
        if buf.is_empty() {
            return;
        }
        self.clock
            .advance(self.costs.io_block_setup_ns + self.costs.io_block_word_ns * buf.len() as f64);
        self.ledger.block_ops += 1;
        self.ledger.block_out_words += buf.len() as u64;
        let kind = match self.io_lookup(addr) {
            Some((idx, off)) => {
                self.tick_device(idx);
                let dev = &mut self.devices[idx];
                for &v in buf {
                    dev.io_write(off, width.truncate(v), width);
                }
                TRACE_BLOCK_OUT
            }
            None => {
                self.unclaimed(addr, "block port write");
                TRACE_BLOCK_OUT | TRACE_UNCLAIMED
            }
        };
        if self.trace.is_some() {
            let ck = mmr::fnv1a_words(buf);
            self.trace_op(kind, width, addr, buf.len() as u64, ck);
        }
    }

    // ---- memory-mapped I/O ----

    /// Memory-mapped read.
    pub fn mem_read(&mut self, addr: u64, width: Width) -> u64 {
        self.clock.advance(self.costs.mem_read_ns);
        self.ledger.mem_read += 1;
        let (value, kind) = match self.mem_lookup(addr) {
            Some((idx, off)) => {
                self.tick_device(idx);
                (width.truncate(self.devices[idx].mem_read(off, width)), TRACE_MEM_READ)
            }
            None => {
                self.unclaimed(addr, "memory read");
                (width.ones(), TRACE_MEM_READ | TRACE_UNCLAIMED)
            }
        };
        self.trace_op(kind, width, addr, value, 0);
        value
    }

    /// Memory-mapped write (posted).
    pub fn mem_write(&mut self, addr: u64, value: u64, width: Width) {
        self.clock.advance(self.costs.mem_write_ns);
        self.ledger.mem_write += 1;
        let kind = match self.mem_lookup(addr) {
            Some((idx, off)) => {
                self.tick_device(idx);
                self.devices[idx].mem_write(off, width.truncate(value), width);
                TRACE_MEM_WRITE
            }
            None => {
                self.unclaimed(addr, "memory write");
                TRACE_MEM_WRITE | TRACE_UNCLAIMED
            }
        };
        self.trace_op(kind, width, addr, width.truncate(value), 0);
    }

    /// Charges a device-driven DMA transfer of `words` words to the
    /// ledger and clock. Called by device models when they master the
    /// bus; the CPU is not involved.
    pub fn charge_dma(&mut self, words: u64) {
        self.ledger.dma_words += words;
        self.ledger.dma_ops += 1;
        self.clock.advance(self.costs.dma_word_ns * words as f64);
        self.trace_op(TRACE_DMA, Width::W8, 0, words, 0);
    }

    fn unclaimed(&mut self, addr: u64, what: &str) {
        self.ledger.unclaimed += 1;
        if self.strict {
            panic!("{what} to unclaimed address {addr:#x}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An 8-byte scratch register file for bus tests.
    struct Scratch {
        regs: [u8; 8],
        ticks: u64,
    }

    impl Scratch {
        fn new() -> Self {
            Scratch { regs: [0; 8], ticks: 0 }
        }
    }

    impl Device for Scratch {
        fn name(&self) -> &str {
            "scratch"
        }
        fn io_read(&mut self, offset: u64, width: Width) -> u64 {
            match width {
                Width::W8 => self.regs[offset as usize] as u64,
                Width::W16 => {
                    u16::from_le_bytes([self.regs[offset as usize], self.regs[offset as usize + 1]])
                        as u64
                }
                Width::W32 => u32::from_le_bytes([
                    self.regs[offset as usize],
                    self.regs[offset as usize + 1],
                    self.regs[offset as usize + 2],
                    self.regs[offset as usize + 3],
                ]) as u64,
            }
        }
        fn io_write(&mut self, offset: u64, value: u64, width: Width) {
            for i in 0..width.bytes() {
                self.regs[(offset + i) as usize] = (value >> (8 * i)) as u8;
            }
        }
        fn mem_read(&mut self, offset: u64, width: Width) -> u64 {
            self.io_read(offset, width)
        }
        fn mem_write(&mut self, offset: u64, value: u64, width: Width) {
            self.io_write(offset, value, width);
        }
        fn tick(&mut self, _now: f64) {
            self.ticks += 1;
        }
    }

    #[test]
    fn port_io_round_trip() {
        let mut bus = Bus::default();
        bus.attach_io(Box::new(Scratch::new()), 0x300, 8);
        bus.outb(0x300, 0xab);
        bus.outw(0x302, 0x1234);
        bus.outl(0x304, 0xdead_beef);
        assert_eq!(bus.inb(0x300), 0xab);
        assert_eq!(bus.inw(0x302), 0x1234);
        assert_eq!(bus.inl(0x304), 0xdead_beef);
        let l = bus.ledger();
        assert_eq!(l.io_ops(), 6);
        assert_eq!(l.io_in, [1, 1, 1]);
        assert_eq!(l.io_out, [1, 1, 1]);
    }

    #[test]
    fn offsets_are_claim_relative() {
        let mut bus = Bus::default();
        bus.attach_io(Box::new(Scratch::new()), 0x23c, 4);
        bus.outb(0x23e, 7); // offset 2 within the claim
        assert_eq!(bus.inb(0x23e), 7);
        assert_eq!(bus.inb(0x23c), 0);
    }

    #[test]
    fn mmio_round_trip_and_costs() {
        let mut bus = Bus::default();
        bus.attach_mem(Box::new(Scratch::new()), 0xf000_0000, 8);
        let t0 = bus.now_ns();
        bus.mem_write(0xf000_0000, 0x55, Width::W8);
        let t1 = bus.now_ns();
        bus.mem_read(0xf000_0000, Width::W8);
        let t2 = bus.now_ns();
        let c = bus.costs();
        assert_eq!(t1 - t0, c.mem_write_ns);
        assert_eq!(t2 - t1, c.mem_read_ns);
        assert_eq!(bus.ledger().mmio_ops(), 2);
    }

    #[test]
    fn unclaimed_reads_float_high() {
        let mut bus = Bus::default();
        assert_eq!(bus.inb(0x999), 0xff);
        assert_eq!(bus.inw(0x999), 0xffff);
        bus.outb(0x999, 1);
        assert_eq!(bus.ledger().unclaimed, 3);
    }

    #[test]
    #[should_panic(expected = "unclaimed")]
    fn strict_mode_panics_on_unclaimed() {
        let mut bus = Bus::default();
        bus.set_strict(true);
        bus.inb(0x1);
    }

    #[test]
    #[should_panic(expected = "overlapping I/O claim")]
    fn overlapping_claims_rejected() {
        let mut bus = Bus::default();
        bus.attach_io(Box::new(Scratch::new()), 0x300, 8);
        bus.attach_io(Box::new(Scratch::new()), 0x304, 8);
    }

    #[test]
    fn block_transfer_counts_and_costs() {
        let mut bus = Bus::default();
        bus.attach_io(Box::new(Scratch::new()), 0x1f0, 8);
        let t0 = bus.now_ns();
        let mut buf = [0u64; 256];
        bus.ins(0x1f0, Width::W16, &mut buf);
        let c = bus.costs();
        let expect = c.io_block_setup_ns + 256.0 * c.io_block_word_ns;
        assert!((bus.now_ns() - t0 - expect).abs() < 1e-9);
        let l = bus.ledger();
        assert_eq!(l.block_ops, 1);
        assert_eq!(l.block_in_words, 256);
        assert_eq!(l.io_ops(), 0, "block words are not single ops");
        assert_eq!(l.pio_ops(), 256);
    }

    #[test]
    fn block_transfer_is_cheaper_than_loop() {
        let mut bus_block = Bus::default();
        bus_block.attach_io(Box::new(Scratch::new()), 0x1f0, 8);
        let mut buf = [0u64; 256];
        bus_block.ins(0x1f0, Width::W16, &mut buf);
        let block_time = bus_block.now_ns();

        let mut bus_loop = Bus::default();
        bus_loop.attach_io(Box::new(Scratch::new()), 0x1f0, 8);
        for _ in 0..256 {
            bus_loop.inw(0x1f0);
        }
        let loop_time = bus_loop.now_ns();
        assert!(block_time < loop_time, "{block_time} !< {loop_time}");
    }

    #[test]
    fn outs_writes_each_word() {
        let mut bus = Bus::default();
        let id = bus.attach_io(Box::new(Scratch::new()), 0, 8);
        bus.outs(0, Width::W8, &[1, 2, 3]);
        // Each word overwrites the same port; the device sees the last.
        assert_eq!(bus.inb(0), 3);
        assert_eq!(bus.ledger().block_out_words, 3);
        let _ = id;
    }

    #[test]
    fn zero_length_block_transfers_are_no_ops() {
        let mut bus = Bus::default();
        bus.attach_io(Box::new(Scratch::new()), 0x1f0, 8);
        bus.set_strict(true); // even an unclaimed-address probe must not fire
        let t0 = bus.now_ns();
        bus.ins(0x1f0, Width::W16, &mut []);
        bus.outs(0x1f0, Width::W16, &[]);
        bus.ins(0x999, Width::W16, &mut []); // unclaimed, zero-length: still nothing
        bus.outs(0x999, Width::W16, &[]);
        assert_eq!(bus.now_ns(), t0, "zero-length transfers charge no time");
        assert_eq!(bus.ledger(), Ledger::new(), "zero-length transfers count nothing");
    }

    #[test]
    fn unclaimed_block_transfers_count_their_words() {
        let mut bus = Bus::default();
        let mut buf = [0u64; 4];
        bus.ins(0x999, Width::W16, &mut buf);
        assert_eq!(buf, [0xffff; 4], "unclaimed block reads float high");
        bus.outs(0x999, Width::W16, &[1, 2, 3]);
        let l = bus.ledger();
        // The bus cycles happen even with no device answering, so the
        // words count — same as single unclaimed ops count in io_in/out.
        assert_eq!(l.block_ops, 2);
        assert_eq!(l.block_in_words, 4);
        assert_eq!(l.block_out_words, 3);
        assert_eq!(l.unclaimed, 2);
    }

    #[test]
    fn idle_advances_time_and_ticks_devices() {
        let mut bus = Bus::default();
        let id = bus.attach_io(Box::new(Scratch::new()), 0, 8);
        bus.idle(5_000.0);
        assert_eq!(bus.now_ns(), 5_000.0);
        // Downcast via the test-only accessor: tick count advanced.
        let dev = bus.device_mut(id);
        assert_eq!(dev.name(), "scratch");
    }

    #[test]
    fn dma_charge_accrues() {
        let mut bus = Bus::default();
        let t0 = bus.now_ns();
        bus.charge_dma(512);
        assert_eq!(bus.ledger().dma_words, 512);
        assert_eq!(bus.ledger().dma_ops, 1);
        assert!(bus.now_ns() > t0);
    }

    /// Drives one representative of every transaction kind.
    fn exercise(bus: &mut Bus) {
        bus.outb(0x300, 0xab);
        bus.inw(0x302);
        bus.outs(0x300, Width::W8, &[1, 2, 3]);
        let mut buf = [0u64; 4];
        bus.ins(0x300, Width::W8, &mut buf);
        bus.inb(0x999); // unclaimed
        bus.charge_dma(16);
    }

    #[test]
    fn trace_counts_one_entry_per_ledger_transaction() {
        let mut bus = Bus::default();
        bus.attach_io(Box::new(Scratch::new()), 0x300, 8);
        bus.outb(0x300, 1); // pre-trace traffic is not recorded
        bus.enable_trace(false);
        let before = bus.ledger();
        exercise(&mut bus);
        let delta = bus.ledger().since(&before);
        assert_eq!(bus.trace().unwrap().len(), delta.len());
        assert_eq!(delta.len(), 6, "2 singles + 2 blocks + 1 unclaimed + 1 dma");
    }

    #[test]
    fn trace_roots_replay_deterministically() {
        let run = |retain: bool| {
            let mut bus = Bus::default();
            bus.attach_io(Box::new(Scratch::new()), 0x300, 8);
            bus.enable_trace(retain);
            exercise(&mut bus);
            bus.trace_root().unwrap()
        };
        assert_eq!(run(false), run(false));
        assert_eq!(run(false), run(true), "streaming and retained agree");

        // A diverging value shows up in the root.
        let mut bus = Bus::default();
        bus.attach_io(Box::new(Scratch::new()), 0x300, 8);
        bus.enable_trace(false);
        bus.outb(0x300, 0xac);
        let mut other = Bus::default();
        other.attach_io(Box::new(Scratch::new()), 0x300, 8);
        other.enable_trace(false);
        other.outb(0x300, 0xad);
        assert_ne!(bus.trace_root(), other.trace_root());
    }

    #[test]
    fn trace_distinguishes_unclaimed_accesses() {
        // Same kind/addr/value, but one bus has the address claimed:
        // the unclaimed flag must separate the roots.
        let mut claimed = Bus::default();
        claimed.attach_io(Box::new(Scratch::new()), 0x300, 8);
        claimed.enable_trace(false);
        claimed.outb(0x300, 0);
        let mut floating = Bus::default();
        floating.enable_trace(false);
        floating.outb(0x300, 0);
        assert_ne!(claimed.trace_root(), floating.trace_root());
    }

    #[test]
    fn drained_trace_segments_reproduce_the_contiguous_root() {
        let mut whole = Bus::default();
        whole.attach_io(Box::new(Scratch::new()), 0x300, 8);
        whole.enable_trace(false);

        let mut drained = Bus::default();
        drained.attach_io(Box::new(Scratch::new()), 0x300, 8);
        drained.enable_trace(true); // segments must retain leaves
        let mut acc = crate::mmr::Mmr::streaming();

        for round in 0..5 {
            exercise(&mut whole);
            exercise(&mut drained);
            if round % 2 == 0 {
                acc.append(&drained.drain_trace_segment().unwrap());
            }
        }
        acc.append(&drained.drain_trace_segment().unwrap());
        assert_eq!(acc.root(), whole.trace_root().unwrap());
        assert_eq!(drained.trace().unwrap().len(), 0);
    }
}
