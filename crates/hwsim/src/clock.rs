//! Simulated time and the bus cost model.
//!
//! Throughput in the paper's tables is wall-clock-derived; in the
//! simulator every bus operation advances a virtual clock by a
//! configurable cost. The *ratios* between driver variants are the
//! reproduction target, so the defaults are calibrated to a late-90s PC
//! (ISA-style port I/O around 700 ns, PCI MMIO under 150 ns) to land the
//! standard drivers near the paper's absolute figures.

/// Per-operation costs in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// One single port-I/O operation (`inb`/`outb`/`inw`/...). ISA bus
    /// cycles dominate; width changes the data moved, not the cost.
    pub io_single_ns: f64,
    /// Per-word cost inside a block (string) transfer (`rep insw`); the
    /// CPU does not re-issue instruction fetch/loop overhead per word.
    pub io_block_word_ns: f64,
    /// Fixed setup cost of one block transfer instruction.
    pub io_block_setup_ns: f64,
    /// One memory-mapped read (PCI read round trip).
    pub mem_read_ns: f64,
    /// One memory-mapped write (posted; cheaper than reads).
    pub mem_write_ns: f64,
    /// Per-word cost of a device-driven DMA transfer.
    pub dma_word_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            io_single_ns: 700.0,
            io_block_word_ns: 430.0,
            io_block_setup_ns: 300.0,
            mem_read_ns: 250.0,
            mem_write_ns: 60.0,
            dma_word_ns: 60.0,
        }
    }
}

/// The simulated clock. Monotonically advances as the bus (and devices)
/// charge costs to it.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_ns: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.now_ns
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&mut self, ns: f64) {
        debug_assert!(ns >= 0.0, "time cannot go backwards");
        self.now_ns += ns;
    }

    /// Elapsed nanoseconds since an earlier reading.
    pub fn since_ns(&self, earlier_ns: f64) -> f64 {
        self.now_ns - earlier_ns
    }
}

/// Converts `bytes` moved in `ns` nanoseconds to megabytes per second
/// (decimal MB, matching `hdparm`-style reporting).
pub fn throughput_mb_s(bytes: u64, ns: f64) -> f64 {
    if ns <= 0.0 {
        return 0.0;
    }
    (bytes as f64 / 1.0e6) / (ns / 1.0e9)
}

/// Converts `ops` completed in `ns` nanoseconds to operations/second.
pub fn rate_per_s(ops: u64, ns: f64) -> f64 {
    if ns <= 0.0 {
        return 0.0;
    }
    ops as f64 / (ns / 1.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ns(), 0.0);
        c.advance(700.0);
        c.advance(60.0);
        assert_eq!(c.now_ns(), 760.0);
        assert_eq!(c.since_ns(700.0), 60.0);
    }

    #[test]
    fn throughput_math() {
        // 1 MB in 0.1 s = 10 MB/s.
        assert!((throughput_mb_s(1_000_000, 1.0e8) - 10.0).abs() < 1e-9);
        assert_eq!(throughput_mb_s(100, 0.0), 0.0);
        // 500 ops in 0.5 s = 1000 ops/s.
        assert!((rate_per_s(500, 5.0e8) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn default_costs_are_sane() {
        let c = CostModel::default();
        assert!(c.io_single_ns > c.io_block_word_ns, "rep transfers beat loops");
        assert!(c.mem_read_ns > c.mem_write_ns, "PCI reads cost more than posted writes");
    }
}
