//! The I/O operation ledger.
//!
//! The paper's performance tables (2, 3, 4) report the *number of I/O
//! operations* a driver performs per workload unit. The ledger counts
//! every bus access by kind so experiment harnesses can report exact
//! figures and tests can assert on protocol costs.

use crate::width::Width;

/// Cumulative counts of bus operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Single port reads, by width.
    pub io_in: [u64; 3],
    /// Single port writes, by width.
    pub io_out: [u64; 3],
    /// Words moved by block (string) input operations.
    pub block_in_words: u64,
    /// Words moved by block (string) output operations.
    pub block_out_words: u64,
    /// Number of block transfer instructions issued.
    pub block_ops: u64,
    /// Memory-mapped reads.
    pub mem_read: u64,
    /// Memory-mapped writes.
    pub mem_write: u64,
    /// Words moved by DMA transfers (device-driven).
    pub dma_words: u64,
    /// DMA transfer bursts (one per [`Bus::charge_dma`] call).
    ///
    /// [`Bus::charge_dma`]: crate::Bus::charge_dma
    pub dma_ops: u64,
    /// Accesses to unclaimed addresses (driver bugs).
    pub unclaimed: u64,
}

fn widx(w: Width) -> usize {
    match w {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
    }
}

impl Ledger {
    /// A fresh all-zero ledger.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_in(&mut self, w: Width) {
        self.io_in[widx(w)] += 1;
    }

    pub(crate) fn count_out(&mut self, w: Width) {
        self.io_out[widx(w)] += 1;
    }

    /// Total single port-I/O operations (reads + writes, all widths).
    pub fn io_ops(&self) -> u64 {
        self.io_in.iter().sum::<u64>() + self.io_out.iter().sum::<u64>()
    }

    /// Total programmed-I/O operations including each block word, which
    /// is how the paper's Table 2 counts (`#s(1+256)` for 16-bit PIO:
    /// 256 data-word transfers per sector plus per-sector overhead).
    pub fn pio_ops(&self) -> u64 {
        self.io_ops() + self.block_in_words + self.block_out_words
    }

    /// Total memory-mapped operations.
    pub fn mmio_ops(&self) -> u64 {
        self.mem_read + self.mem_write
    }

    /// All operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.pio_ops() + self.mmio_ops()
    }

    /// Number of bus *transactions* recorded: single port ops, block
    /// instructions (one per `rep`, not per word), memory-mapped ops
    /// and DMA bursts. This is exactly the number of authenticated
    /// trace entries a traced [`Bus`] appends (unclaimed accesses are
    /// already counted in their kind), so the MMR watermark and the
    /// benches read it in O(1) instead of probing with an
    /// `entries().count()`-style scan.
    ///
    /// [`Bus`]: crate::Bus
    pub fn len(&self) -> u64 {
        self.io_ops() + self.block_ops + self.mmio_ops() + self.dma_ops
    }

    /// Whether nothing has been recorded at all.
    pub fn is_empty(&self) -> bool {
        *self == Ledger::default()
    }

    /// Accumulates another ledger's counts into this one. Merging is
    /// commutative and associative, so per-shard ledgers fold into a
    /// fleet total in any order with one deterministic result.
    pub fn merge(&mut self, other: &Ledger) {
        for i in 0..3 {
            self.io_in[i] += other.io_in[i];
            self.io_out[i] += other.io_out[i];
        }
        self.block_in_words += other.block_in_words;
        self.block_out_words += other.block_out_words;
        self.block_ops += other.block_ops;
        self.mem_read += other.mem_read;
        self.mem_write += other.mem_write;
        self.dma_words += other.dma_words;
        self.dma_ops += other.dma_ops;
        self.unclaimed += other.unclaimed;
    }

    /// Element-wise difference `self - earlier` (counts are monotonic).
    /// Panics naming the offending field if any count regressed.
    pub fn since(&self, earlier: &Ledger) -> Ledger {
        let sub = |a: u64, b: u64, field: &str| {
            a.checked_sub(b).unwrap_or_else(|| panic!("ledger went backwards: {field}"))
        };
        Ledger {
            io_in: [
                sub(self.io_in[0], earlier.io_in[0], "io_in[W8]"),
                sub(self.io_in[1], earlier.io_in[1], "io_in[W16]"),
                sub(self.io_in[2], earlier.io_in[2], "io_in[W32]"),
            ],
            io_out: [
                sub(self.io_out[0], earlier.io_out[0], "io_out[W8]"),
                sub(self.io_out[1], earlier.io_out[1], "io_out[W16]"),
                sub(self.io_out[2], earlier.io_out[2], "io_out[W32]"),
            ],
            block_in_words: sub(self.block_in_words, earlier.block_in_words, "block_in_words"),
            block_out_words: sub(self.block_out_words, earlier.block_out_words, "block_out_words"),
            block_ops: sub(self.block_ops, earlier.block_ops, "block_ops"),
            mem_read: sub(self.mem_read, earlier.mem_read, "mem_read"),
            mem_write: sub(self.mem_write, earlier.mem_write, "mem_write"),
            dma_words: sub(self.dma_words, earlier.dma_words, "dma_words"),
            dma_ops: sub(self.dma_ops, earlier.dma_ops, "dma_ops"),
            unclaimed: sub(self.unclaimed, earlier.unclaimed, "unclaimed"),
        }
    }
}

/// A checkpoint cursor over a monotonically-growing ledger.
///
/// Remembers the counts at the last drain so each [`Checkpoint::drain`]
/// returns exactly the delta accrued since the previous one. A fleet
/// shard keeps one cursor per instance bus and merges drained deltas
/// into its shard ledger at checkpoint boundaries — single-writer
/// batched commits instead of a shared ledger behind a lock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    mark: Ledger,
}

impl Checkpoint {
    /// A cursor that has drained nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// The delta since the last drain, advancing the cursor. Panics
    /// with "ledger went backwards" if `current` regressed below the
    /// mark (a torn commit).
    pub fn drain(&mut self, current: &Ledger) -> Ledger {
        let delta = current.since(&self.mark);
        self.mark = *current;
        delta
    }

    /// Everything drained so far.
    pub fn drained(&self) -> Ledger {
        self.mark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let mut l = Ledger::new();
        l.count_in(Width::W8);
        l.count_in(Width::W8);
        l.count_out(Width::W16);
        l.block_in_words += 256;
        l.block_ops += 1;
        l.mem_write += 3;
        assert_eq!(l.io_ops(), 3);
        assert_eq!(l.pio_ops(), 259);
        assert_eq!(l.mmio_ops(), 3);
        assert_eq!(l.total_ops(), 262);
        // len() counts transactions: 3 singles + 1 block op + 3 mmio.
        assert_eq!(l.len(), 7);
        l.dma_ops += 1;
        l.dma_words += 512;
        assert_eq!(l.len(), 8, "a DMA burst is one transaction");
        assert!(!l.is_empty());
        assert!(Ledger::new().is_empty());
    }

    #[test]
    fn since_subtracts() {
        let mut l = Ledger::new();
        l.count_in(Width::W8);
        let snap = l;
        l.count_in(Width::W8);
        l.count_out(Width::W32);
        let d = l.since(&snap);
        assert_eq!(d.io_in[0], 1);
        assert_eq!(d.io_out[2], 1);
        assert_eq!(d.io_ops(), 2);
    }

    #[test]
    #[should_panic(expected = "ledger went backwards")]
    fn since_panics_on_reversed_snapshots() {
        let mut l = Ledger::new();
        l.count_in(Width::W8);
        let later = l;
        Ledger::new().since(&later);
    }

    #[test]
    #[should_panic(expected = "ledger went backwards: block_ops")]
    fn since_panic_names_the_offending_field() {
        let mut later = Ledger::new();
        later.block_ops += 1;
        Ledger::new().since(&later);
    }

    #[test]
    fn merge_accumulates_every_counter() {
        let mut a = Ledger::new();
        a.count_in(Width::W8);
        a.block_out_words += 4;
        a.dma_words += 2;
        let mut b = Ledger::new();
        b.count_in(Width::W8);
        b.count_out(Width::W32);
        b.mem_write += 1;
        b.unclaimed += 1;
        let mut total = a;
        total.merge(&b);
        assert_eq!(total.io_in[0], 2);
        assert_eq!(total.io_out[2], 1);
        assert_eq!(total.block_out_words, 4);
        assert_eq!(total.mem_write, 1);
        assert_eq!(total.dma_words, 2);
        assert_eq!(total.unclaimed, 1);
        // Commutative: b.merge(a) gives the same total.
        let mut swapped = b;
        swapped.merge(&a);
        assert_eq!(total, swapped);
    }

    #[test]
    fn checkpoint_drains_exact_deltas() {
        let mut l = Ledger::new();
        let mut cp = Checkpoint::new();
        l.count_in(Width::W8);
        l.count_in(Width::W16);
        assert_eq!(cp.drain(&l).io_ops(), 2);
        // Nothing new: the next drain is empty.
        assert_eq!(cp.drain(&l), Ledger::new());
        l.count_out(Width::W8);
        l.block_in_words += 8;
        let d = cp.drain(&l);
        assert_eq!(d.io_ops(), 1);
        assert_eq!(d.block_in_words, 8);
        assert_eq!(cp.drained(), l);
    }

    #[test]
    #[should_panic(expected = "ledger went backwards")]
    fn checkpoint_rejects_regressing_ledgers() {
        let mut l = Ledger::new();
        l.count_in(Width::W8);
        let mut cp = Checkpoint::new();
        cp.drain(&l);
        cp.drain(&Ledger::new());
    }
}
