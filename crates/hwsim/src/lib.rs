//! A small simulated-machine substrate for driver experiments.
//!
//! The Devil paper evaluates generated hardware-operating code against
//! real ISA/PCI devices. This crate provides the laptop-scale stand-in:
//! a [`Bus`] with port-I/O and memory-mapped address claims, an
//! operation [`Ledger`] and a simulated clock with a calibrated
//! [`CostModel`], interrupt lines, and shared system memory for DMA —
//! enough to reproduce the *shape* of the paper's performance tables
//! (who wins, by what factor) deterministically.
//!
//! # Examples
//!
//! ```
//! use hwsim::{Bus, Device, Width};
//!
//! struct Echo(u8);
//! impl Device for Echo {
//!     fn name(&self) -> &str { "echo" }
//!     fn io_read(&mut self, _o: u64, _w: Width) -> u64 { self.0 as u64 }
//!     fn io_write(&mut self, _o: u64, v: u64, _w: Width) { self.0 = v as u8 }
//! }
//!
//! let mut bus = Bus::default();
//! bus.attach_io(Box::new(Echo(0)), 0x60, 1);
//! bus.outb(0x60, 0x2a);
//! assert_eq!(bus.inb(0x60), 0x2a);
//! assert_eq!(bus.ledger().io_ops(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod bus;
pub mod clock;
pub mod device;
pub mod ledger;
pub mod mmr;
pub mod width;

pub use bus::{Bus, DeviceId};
pub use clock::{rate_per_s, throughput_mb_s, CostModel, SimClock};
pub use device::{Device, IrqLine, SharedMem};
pub use ledger::{Checkpoint, Ledger};
pub use mmr::{bisect_divergence, Hash, Mmr, MmrForest, MmrLog};
pub use width::Width;
