//! Access widths for port and memory operations.

use std::fmt;

/// The width of a single bus access.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum Width {
    /// 8-bit access (`inb`/`outb`).
    W8,
    /// 16-bit access (`inw`/`outw`).
    W16,
    /// 32-bit access (`inl`/`outl`).
    W32,
}

impl Width {
    /// Number of bytes moved by one access of this width.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
        }
    }

    /// Number of bits moved by one access of this width.
    pub fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }

    /// The all-ones value of this width (floating-bus read result).
    pub fn ones(self) -> u64 {
        match self {
            Width::W8 => 0xff,
            Width::W16 => 0xffff,
            Width::W32 => 0xffff_ffff,
        }
    }

    /// Truncates `v` to this width.
    pub fn truncate(self, v: u64) -> u64 {
        v & self.ones()
    }

    /// The width needed for an access of `bits` bits, if standard.
    pub fn from_bits(bits: u32) -> Option<Width> {
        match bits {
            8 => Some(Width::W8),
            16 => Some(Width::W16),
            32 => Some(Width::W32),
            _ => None,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::W16.bytes(), 2);
        assert_eq!(Width::W32.bytes(), 4);
        assert_eq!(Width::W16.bits(), 16);
        assert_eq!(Width::W8.ones(), 0xff);
        assert_eq!(Width::W32.truncate(0x1_2345_6789), 0x2345_6789);
        assert_eq!(Width::from_bits(16), Some(Width::W16));
        assert_eq!(Width::from_bits(24), None);
        assert_eq!(Width::W32.to_string(), "32");
    }
}
