//! The device trait and the shared facilities devices can use.
//!
//! The simulator is single-threaded by design — device models are state
//! machines advanced synchronously by bus accesses — so shared handles
//! use `Rc<Cell>`/`Rc<RefCell>` rather than atomics.

use crate::width::Width;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A simulated hardware device attached to the bus.
///
/// Offsets passed to the access methods are relative to the base of the
/// claim the device registered with [`crate::Bus::attach_io`] /
/// [`crate::Bus::attach_mem`].
pub trait Device {
    /// A short name for tracing and error messages.
    fn name(&self) -> &str;

    /// Handles a port read. Devices with no port claim never see this.
    fn io_read(&mut self, offset: u64, width: Width) -> u64 {
        let _ = (offset, width);
        width.ones()
    }

    /// Handles a port write.
    fn io_write(&mut self, offset: u64, value: u64, width: Width) {
        let _ = (offset, value, width);
    }

    /// Handles a memory-mapped read.
    fn mem_read(&mut self, offset: u64, width: Width) -> u64 {
        let _ = (offset, width);
        width.ones()
    }

    /// Handles a memory-mapped write.
    fn mem_write(&mut self, offset: u64, value: u64, width: Width) {
        let _ = (offset, value, width);
    }

    /// Advances internal state to simulated time `now_ns`. Called by the
    /// bus before every access so devices can complete timed operations
    /// (seeks, FIFO drains) lazily.
    fn tick(&mut self, now_ns: f64) {
        let _ = now_ns;
    }
}

/// An interrupt request line shared between a device and its driver.
///
/// Devices `raise` the line; drivers observe it with [`IrqLine::pending`]
/// and acknowledge with [`IrqLine::acknowledge`]. This models a
/// level-triggered line with an edge counter so tests can assert on the
/// number of interrupts delivered.
#[derive(Clone, Debug, Default)]
pub struct IrqLine {
    inner: Rc<IrqInner>,
}

#[derive(Debug, Default)]
struct IrqInner {
    asserted: Cell<bool>,
    edges: Cell<u64>,
}

impl IrqLine {
    /// Creates an idle line.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asserts the line (device side). Re-raising an already-asserted
    /// line is not a new edge.
    pub fn raise(&self) {
        if !self.inner.asserted.get() {
            self.inner.asserted.set(true);
            self.inner.edges.set(self.inner.edges.get() + 1);
        }
    }

    /// Deasserts the line (device side).
    pub fn clear(&self) {
        self.inner.asserted.set(false);
    }

    /// Whether the line is currently asserted.
    pub fn pending(&self) -> bool {
        self.inner.asserted.get()
    }

    /// Driver-side acknowledge: deasserts and returns whether it was
    /// pending.
    pub fn acknowledge(&self) -> bool {
        let was = self.inner.asserted.get();
        self.inner.asserted.set(false);
        was
    }

    /// Total number of rising edges so far.
    pub fn edge_count(&self) -> u64 {
        self.inner.edges.get()
    }
}

/// System memory shared between the CPU (driver) and DMA-capable
/// devices.
#[derive(Clone, Debug, Default)]
pub struct SharedMem {
    inner: Rc<RefCell<Vec<u8>>>,
}

impl SharedMem {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        SharedMem { inner: Rc::new(RefCell::new(vec![0; size])) }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (a DMA programming bug in
    /// the caller; simulators fail fast).
    pub fn read(&self, addr: usize, buf: &mut [u8]) {
        let mem = self.inner.borrow();
        buf.copy_from_slice(&mem[addr..addr + buf.len()]);
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&self, addr: usize, buf: &[u8]) {
        let mut mem = self.inner.borrow_mut();
        mem[addr..addr + buf.len()].copy_from_slice(buf);
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: usize) -> u8 {
        self.inner.borrow()[addr]
    }

    /// Writes one byte.
    pub fn write_u8(&self, addr: usize, v: u8) {
        self.inner.borrow_mut()[addr] = v;
    }

    /// Fills a range with a byte value.
    pub fn fill(&self, addr: usize, len: usize, v: u8) {
        let mut mem = self.inner.borrow_mut();
        mem[addr..addr + len].fill(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irq_edges_and_ack() {
        let line = IrqLine::new();
        assert!(!line.pending());
        line.raise();
        line.raise(); // level stays, no second edge
        assert!(line.pending());
        assert_eq!(line.edge_count(), 1);
        assert!(line.acknowledge());
        assert!(!line.pending());
        assert!(!line.acknowledge());
        line.raise();
        assert_eq!(line.edge_count(), 2);
        line.clear();
        assert!(!line.pending());
    }

    #[test]
    fn irq_is_shared_between_clones() {
        let a = IrqLine::new();
        let b = a.clone();
        a.raise();
        assert!(b.pending());
        b.acknowledge();
        assert!(!a.pending());
    }

    #[test]
    fn shared_mem_round_trip() {
        let mem = SharedMem::new(64);
        assert_eq!(mem.len(), 64);
        mem.write(10, &[1, 2, 3]);
        let mut out = [0u8; 3];
        mem.read(10, &mut out);
        assert_eq!(out, [1, 2, 3]);
        mem.write_u8(0, 0xaa);
        assert_eq!(mem.read_u8(0), 0xaa);
        mem.fill(20, 4, 0x55);
        assert_eq!(mem.read_u8(23), 0x55);
    }

    #[test]
    fn shared_mem_is_shared_between_clones() {
        let a = SharedMem::new(8);
        let b = a.clone();
        a.write_u8(3, 9);
        assert_eq!(b.read_u8(3), 9);
    }

    #[test]
    #[should_panic]
    fn shared_mem_out_of_bounds_panics() {
        let mem = SharedMem::new(4);
        mem.write(2, &[0; 4]);
    }

    #[test]
    fn default_device_impls() {
        struct Null;
        impl Device for Null {
            fn name(&self) -> &str {
                "null"
            }
        }
        let mut d = Null;
        assert_eq!(d.io_read(0, Width::W8), 0xff);
        assert_eq!(d.mem_read(0, Width::W32), 0xffff_ffff);
        d.io_write(0, 1, Width::W8);
        d.mem_write(0, 1, Width::W8);
        d.tick(5.0);
    }
}
