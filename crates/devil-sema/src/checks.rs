//! The paper's Section 3.1 verifications over the resolved model.
//!
//! Strong-typing checks run during resolution (`resolve.rs`); this module
//! implements the remaining three groups plus the direction checks that
//! need the whole model:
//!
//! * **no omission** — every declared entity is used: ports (and every
//!   offset of their ranges), registers, relevant register bits, named
//!   types, read-mapping exhaustiveness;
//! * **no double definition** — handled during resolution (name tables);
//!   this module re-checks cross-entity invariants that resolution cannot
//!   see locally;
//! * **no overlapping definitions** — port/register overlap (modulo
//!   disjoint pre-actions, disjoint masks, or a shared serialization
//!   order) and register-bit overlap between variables;
//! * **behaviour** — trigger variables sharing a register must declare
//!   neutral values; direction consistency between variables, their
//!   registers and their enum mappings.

use crate::model::*;
use devil_syntax::diag::{DiagSink, ErrorCode};

/// Runs all model-level verifications, reporting into `diags`.
pub fn check(model: &CheckedDevice, diags: &mut DiagSink) {
    check_directions(model, diags);
    check_enum_mappings(model, diags);
    check_omission(model, diags);
    check_register_overlap(model, diags);
    check_bit_overlap(model, diags);
    check_trigger_conflicts(model, diags);
}

/// Direction consistency: a variable is readable iff every backing
/// register is readable (likewise writable); it must be at least one of
/// the two. Returns `(readable, writable)`.
pub fn var_directions(model: &CheckedDevice, v: &VarDef) -> (bool, bool) {
    match &v.bits {
        None => (true, true), // memory cells are always accessible
        Some(chunks) => {
            let readable = chunks.iter().all(|c| model.reg(c.reg).readable());
            let writable = chunks.iter().all(|c| model.reg(c.reg).writable());
            (readable, writable)
        }
    }
}

fn check_directions(model: &CheckedDevice, diags: &mut DiagSink) {
    for v in &model.variables {
        let (r, w) = var_directions(model, v);
        if !r && !w {
            diags.error(
                ErrorCode::TDirection,
                format!(
                    "variable `{}` is neither readable nor writable (its registers mix read-only and write-only)",
                    v.name
                ),
                v.span,
            );
        }
    }
}

fn check_enum_mappings(model: &CheckedDevice, diags: &mut DiagSink) {
    for v in &model.variables {
        let TypeSem::Enum(en) = &v.ty else { continue };
        let (readable, writable) = var_directions(model, v);
        let has_read = en.arms.iter().any(|a| a.readable);
        let has_write = en.arms.iter().any(|a| a.writable);
        if readable && !has_read {
            diags.error(
                ErrorCode::ONoReadMapping,
                format!(
                    "variable `{}` is readable but its enumerated type has no read (`<=`/`<=>`) mapping",
                    v.name
                ),
                v.span,
            );
        }
        if writable && !has_write {
            diags.error(
                ErrorCode::ONoWriteMapping,
                format!(
                    "variable `{}` is writable but its enumerated type has no write (`=>`/`<=>`) mapping",
                    v.name
                ),
                v.span,
            );
        }
        if !readable && has_read {
            diags.error(
                ErrorCode::TDirection,
                format!(
                    "type of variable `{}` has read mappings but the variable is not readable",
                    v.name
                ),
                v.span,
            );
        }
        if !writable && has_write {
            diags.error(
                ErrorCode::TDirection,
                format!(
                    "type of variable `{}` has write mappings but the variable is not writable",
                    v.name
                ),
                v.span,
            );
        }
        // Read mappings must be exhaustive over the pattern space.
        if readable && has_read && en.width <= 16 {
            let covered = en.arms.iter().filter(|a| a.readable).count() as u64;
            let space = 1u64 << en.width;
            if covered < space {
                diags.error(
                    ErrorCode::OEnumNotExhaustive,
                    format!(
                        "read mapping of variable `{}` covers {covered} of {space} possible {}-bit patterns",
                        v.name, en.width
                    ),
                    v.span,
                );
            }
        }
    }
}

fn check_omission(model: &CheckedDevice, diags: &mut DiagSink) {
    // Ports: every port referenced; every offset of its range used.
    for (pi, port) in model.ports.iter().enumerate() {
        let pid = PortId(pi as u32);
        let mut used: Vec<u64> = Vec::new();
        for reg in &model.registers {
            for b in [&reg.read, &reg.write].into_iter().flatten() {
                if b.port != pid {
                    continue;
                }
                match b.offset {
                    Offset::Const(c) => used.push(c),
                    Offset::Param(i) => used.extend(reg.params[i].iter()),
                }
            }
        }
        if used.is_empty() {
            diags.error(
                ErrorCode::OUnusedPort,
                format!("port `{}` is never used by any register", port.name),
                port.span,
            );
            continue;
        }
        let missing: Vec<u64> = port.iter_offsets().filter(|o| !used.contains(o)).collect();
        if !missing.is_empty() {
            diags.error(
                ErrorCode::OUnusedPort,
                format!("offsets {missing:?} of port `{}` are declared but never used", port.name),
                port.span,
            );
        }
    }

    // Registers: every register used by at least one variable (families
    // count through instances or parameterized variables; instances are
    // separate registers here and need their own use).
    let mut reg_used = vec![false; model.registers.len()];
    // Which registers are families someone instantiated? Instances were
    // inlined, so track families referenced by instance declarations via
    // name: an instance has no params and shares the family's ports. We
    // conservatively mark a family used when an instance uses the same
    // port bindings. Simplest robust rule: a family register is used when
    // any variable references it directly.
    for v in &model.variables {
        if let Some(chunks) = &v.bits {
            for c in chunks {
                reg_used[c.reg.0 as usize] = true;
            }
        }
    }
    // Registers named in serialization plans also count as used.
    let mark_plan = |plan: &SerPlan, used: &mut Vec<bool>| {
        fn walk(steps: &[SerStep], used: &mut Vec<bool>) {
            for s in steps {
                match s {
                    SerStep::Reg(r) => used[r.0 as usize] = true,
                    SerStep::If { then, els, .. } => {
                        walk(then, used);
                        walk(els, used);
                    }
                }
            }
        }
        walk(&plan.steps, used);
    };
    for v in &model.variables {
        if let Some(p) = &v.serialized {
            mark_plan(p, &mut reg_used);
        }
    }
    for s in &model.structures {
        if let Some(p) = &s.serialized {
            mark_plan(p, &mut reg_used);
        }
    }
    for (ri, reg) in model.registers.iter().enumerate() {
        if !reg_used[ri] {
            diags.error(
                ErrorCode::OUnusedRegister,
                format!("register `{}` is never used by any variable", reg.name),
                reg.span,
            );
        }
    }

    // Relevant register bits must be covered by variables.
    for (ri, reg) in model.registers.iter().enumerate() {
        if !reg_used[ri] {
            continue; // already reported
        }
        let rid = RegId(ri as u32);
        let mut covered = 0u64;
        for v in &model.variables {
            if let Some(chunks) = &v.bits {
                for c in chunks.iter().filter(|c| c.reg == rid) {
                    for &(hi, lo) in &c.ranges {
                        for b in lo..=hi.min(63) {
                            covered |= 1 << b;
                        }
                    }
                }
            }
        }
        let relevant = reg.relevant_bits();
        let uncovered = relevant & !covered;
        if uncovered != 0 {
            let bits: Vec<u32> = (0..reg.size).filter(|b| uncovered & (1 << b) != 0).collect();
            diags.error(
                ErrorCode::OUncoveredBits,
                format!(
                    "relevant bit(s) {bits:?} of register `{}` are not used by any variable (mark them irrelevant in the mask or define a variable)",
                    reg.name
                ),
                reg.span,
            );
        }
    }

    // Named types must be used.
    for td in &model.typedefs {
        let used = model.variables.iter().any(|v| match (&v.ty, &td.ty) {
            (TypeSem::Enum(a), TypeSem::Enum(b)) => a.name.as_deref() == b.name.as_deref(),
            (a, b) => a == b,
        });
        if !used {
            diags.error(
                ErrorCode::OUnusedType,
                format!("type `{}` is never used", td.name),
                td.span,
            );
        }
    }

    // Private memory variables must participate in some action.
    for (vi, v) in model.variables.iter().enumerate() {
        if !v.is_memory() {
            continue;
        }
        let vid = VarId(vi as u32);
        let mut used = false;
        let mut scan_actions = |actions: &[Action]| {
            for a in actions {
                if a.target == ActionTarget::Var(vid) {
                    used = true;
                }
                match &a.value {
                    ActionValue::Var(v2) if *v2 == vid => used = true,
                    ActionValue::Struct(fields) => {
                        for (fv, val) in fields {
                            if *fv == vid || matches!(val, ActionValue::Var(v3) if *v3 == vid) {
                                used = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        };
        for reg in &model.registers {
            scan_actions(&reg.pre);
            scan_actions(&reg.post);
            scan_actions(&reg.set);
        }
        for v2 in &model.variables {
            scan_actions(&v2.set);
        }
        if !used {
            diags.warning(
                ErrorCode::OUnusedPrivate,
                format!("private memory variable `{}` is never read or assigned", v.name),
                v.span,
            );
        }
    }
}

/// The set of constant offsets a binding can take.
fn offset_values(reg: &RegDef, b: &PortBinding) -> Vec<u64> {
    match b.offset {
        Offset::Const(c) => vec![c],
        Offset::Param(i) => reg.params[i].iter().collect(),
    }
}

/// Whether two registers have disjoint pre-action contexts.
///
/// Pre-actions establish the addressing context for a shared port
/// (index registers, bank selects, automata state). Two registers are
/// considered disjoint when their pre-action lists differ — equal lists
/// (including two empty lists) establish the *same* context and
/// therefore genuinely collide. Parameterized pre-actions (`pre {IA =
/// i}`) make a family self-disjoint across its instances.
fn disjoint_pre(a: &RegDef, b: &RegDef) -> bool {
    if a.pre.is_empty() && b.pre.is_empty() {
        return false;
    }
    if a.pre != b.pre {
        return true;
    }
    // Identical parameterized pre-actions on the *same* family register
    // address different contexts per argument; between two distinct
    // declarations they do not.
    false
}

/// Whether two masks are disjoint: no bit is *relevant* in both.
///
/// Forced (`0`/`1`) bits do not count as ownership — in the busmouse,
/// `interrupt_reg` (mask `'000*0000'`) and `index_reg` (mask
/// `'1**00000'`) share the write port at `base@2` and are disambiguated
/// by their disjoint relevant bits; the forced bits encode the command
/// pattern that selects which function the controller performs.
fn disjoint_masks(a: &RegDef, b: &RegDef) -> bool {
    if a.size != b.size {
        return true;
    }
    // At least one register must constrain some bits (a default
    // all-relevant mask on both sides is a genuine conflict).
    a.relevant_bits() & b.relevant_bits() == 0
}

/// Collects, for each register, the ids of serialization plans it appears
/// in (plans provide an implicit addressing context, exempting their
/// registers from the overlap check — the 8259A `icw2`/`icw3`/`icw4`
/// case).
fn serialization_groups(model: &CheckedDevice) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); model.registers.len()];
    let mut plan_id = 0usize;
    let visit = |plan: &SerPlan, groups: &mut Vec<Vec<usize>>, plan_id: usize| {
        fn walk(steps: &[SerStep], groups: &mut Vec<Vec<usize>>, plan_id: usize) {
            for s in steps {
                match s {
                    SerStep::Reg(r) => groups[r.0 as usize].push(plan_id),
                    SerStep::If { then, els, .. } => {
                        walk(then, groups, plan_id);
                        walk(els, groups, plan_id);
                    }
                }
            }
        }
        walk(&plan.steps, groups, plan_id);
    };
    for v in &model.variables {
        if let Some(p) = &v.serialized {
            visit(p, &mut groups, plan_id);
            plan_id += 1;
        }
    }
    for s in &model.structures {
        if let Some(p) = &s.serialized {
            visit(p, &mut groups, plan_id);
            plan_id += 1;
        }
    }
    groups
}

fn check_register_overlap(model: &CheckedDevice, diags: &mut DiagSink) {
    let groups = serialization_groups(model);
    let n = model.registers.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (&model.registers[i], &model.registers[j]);
            for (dir, ba, bb) in [("read", &a.read, &b.read), ("write", &a.write, &b.write)] {
                let (Some(ba), Some(bb)) = (ba, bb) else { continue };
                if ba.port != bb.port {
                    continue;
                }
                let oa = offset_values(a, ba);
                let ob = offset_values(b, bb);
                if !oa.iter().any(|o| ob.contains(o)) {
                    continue;
                }
                // Exemptions.
                if disjoint_pre(a, b) || disjoint_masks(a, b) {
                    continue;
                }
                if groups[i].iter().any(|g| groups[j].contains(g)) {
                    continue;
                }
                diags.push(
                    devil_syntax::Diagnostic::error(
                        ErrorCode::VRegisterOverlap,
                        format!(
                            "registers `{}` and `{}` overlap for {dir} access on the same port without disjoint pre-actions, masks, or a common serialization order",
                            a.name, b.name
                        ),
                        b.span,
                    )
                    .with_note(format!("`{}` declared here", a.name), Some(a.span)),
                );
            }
        }
    }
}

fn check_bit_overlap(model: &CheckedDevice, diags: &mut DiagSink) {
    // For each register, record which variable claims each bit.
    let n = model.registers.len();
    let mut owner: Vec<Vec<Option<VarId>>> =
        model.registers.iter().map(|r| vec![None; r.size as usize]).collect();
    let _ = n;
    for (vi, v) in model.variables.iter().enumerate() {
        let vid = VarId(vi as u32);
        let Some(chunks) = &v.bits else { continue };
        for c in chunks {
            // Chunks into the same family register with different
            // constant arguments address different physical registers.
            // Group by (reg, const-args); symbolic args are conservative.
            for &(hi, lo) in &c.ranges {
                let size = model.reg(c.reg).size;
                for bit in lo..=hi.min(size.saturating_sub(1)) {
                    let slot = &mut owner[c.reg.0 as usize][bit as usize];
                    match slot {
                        Some(prev) if *prev != vid => {
                            // Distinct constant args → distinct registers.
                            if distinct_const_args(model, *prev, vid, c.reg) {
                                continue;
                            }
                            let prev_name = model.var(*prev).name.clone();
                            diags.push(
                                devil_syntax::Diagnostic::error(
                                    ErrorCode::VBitOverlap,
                                    format!(
                                        "bit {bit} of register `{}` is used by both `{prev_name}` and `{}`",
                                        model.reg(c.reg).name,
                                        v.name
                                    ),
                                    v.span,
                                )
                                .with_note(
                                    format!("`{prev_name}` declared here"),
                                    Some(model.var(*prev).span),
                                ),
                            );
                        }
                        _ => *slot = Some(vid),
                    }
                }
            }
        }
    }
}

/// Whether two variables reference family register `reg` with constant
/// arguments that are provably different.
fn distinct_const_args(model: &CheckedDevice, a: VarId, b: VarId, reg: RegId) -> bool {
    let args_of = |vid: VarId| -> Option<Vec<u64>> {
        let v = model.var(vid);
        let chunks = v.bits.as_ref()?;
        let c = chunks.iter().find(|c| c.reg == reg)?;
        c.args
            .iter()
            .map(|a| match a {
                ChunkArg::Const(v) => Some(*v),
                ChunkArg::Param(_) => None,
            })
            .collect()
    };
    match (args_of(a), args_of(b)) {
        (Some(aa), Some(bb)) => !aa.is_empty() && aa != bb,
        _ => false,
    }
}

fn check_trigger_conflicts(model: &CheckedDevice, diags: &mut DiagSink) {
    for (ri, reg) in model.registers.iter().enumerate() {
        let rid = RegId(ri as u32);
        // Writable variables on this register.
        let writers: Vec<(VarId, &VarDef)> = model
            .variables
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                v.bits.as_ref().is_some_and(|cs| cs.iter().any(|c| c.reg == rid))
                    && var_directions(model, v).1
            })
            .map(|(i, v)| (VarId(i as u32), v))
            .collect();
        if writers.len() < 2 {
            continue;
        }
        for (_, v) in &writers {
            if v.behavior.write_trigger && v.neutral.is_none() {
                diags.error(
                    ErrorCode::VTriggerConflict,
                    format!(
                        "trigger variable `{}` shares register `{}` with other writable variables but declares no neutral value (`except`/`for`)",
                        v.name, reg.name
                    ),
                    v.span,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devil_syntax::parse;

    fn check_src(src: &str) -> DiagSink {
        let (dev, mut diags) = parse(src);
        let dev = dev.expect("no device");
        assert!(!diags.has_errors(), "parse errors: {:#?}", diags.all());
        let model = crate::resolve::resolve(&dev, &[], &mut diags);
        if !diags.has_errors() {
            check(&model, &mut diags);
        }
        diags
    }

    fn check_ok(src: &str) {
        let diags = check_src(src);
        assert!(!diags.has_errors(), "unexpected errors: {:#?}", diags.all());
    }

    #[test]
    fn clean_device_passes_all_checks() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register a = base @ 0 : bit[8];
                 register b = base @ 1 : bit[8];
                 variable va = a : int(8);
                 variable vb = b : int(8);
               }"#,
        );
    }

    #[test]
    fn error_unused_port() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}, ghost : bit[8] port @ {0..0}) {
                 register a = base @ 0 : bit[8];
                 variable va = a : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::OUnusedPort));
    }

    #[test]
    fn error_unused_port_offsets() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..3}) {
                 register a = base @ 0 : bit[8];
                 variable va = a : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::OUnusedPort));
    }

    #[test]
    fn family_covers_port_offsets() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..3}) {
                 register r(i : int{0..3}) = base @ i : bit[8];
                 variable v(i : int{0..3}) = r(i), volatile : int(8);
               }"#,
        );
    }

    #[test]
    fn error_unused_register() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register a = base @ 0 : bit[8];
                 register dead = base @ 1 : bit[8];
                 variable va = a : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::OUnusedRegister));
    }

    #[test]
    fn error_uncovered_relevant_bits() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = base @ 0 : bit[8];
                 variable lo = a[3..0] : int(4);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::OUncoveredBits));
    }

    #[test]
    fn masked_bits_need_no_coverage() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = base @ 0, mask '....****' : bit[8];
                 variable lo = a[3..0] : int(4);
               }"#,
        );
    }

    #[test]
    fn error_unused_type() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 type unused = { A <=> '1', B <=> '0' };
                 register a = base @ 0 : bit[8];
                 variable va = a : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::OUnusedType));
    }

    #[test]
    fn error_register_overlap_same_port() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = base @ 0 : bit[8];
                 register b = base @ 0 : bit[8];
                 variable va = a : int(8);
                 variable vb = b : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::VRegisterOverlap));
        // A bit-overlap report may or may not accompany the register
        // overlap depending on variable layout; only the register
        // overlap is guaranteed here.
    }

    #[test]
    fn overlap_exempt_by_disjoint_pre_actions() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..2}) {
                 register idx = write base @ 2, mask '0000000*' : bit[8];
                 private variable sel = idx[0] : bool;
                 register x0 = read base @ 0, pre {sel = false} : bit[8];
                 register x1 = read base @ 0, pre {sel = true} : bit[8];
                 register fill = base @ 1 : bit[8];
                 variable v0 = x0, volatile : int(8);
                 variable v1 = x1, volatile : int(8);
                 variable vf = fill : int(8);
               }"#,
        );
    }

    #[test]
    fn overlap_exempt_by_common_serialization() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register icw1 = write base @ 0 : bit[8];
                 register icw2 = write base @ 1 : bit[8];
                 register icw3 = write base @ 1 : bit[8];
                 structure init = {
                   variable a = icw1 : int(8);
                   variable b = icw2 : int(8);
                   variable c = icw3 : int(8);
                 } serialized as { icw1; icw2; icw3; };
               }"#,
        );
    }

    #[test]
    fn read_write_same_port_is_fine() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register rd = read base @ 0 : bit[8];
                 register wr = write base @ 0 : bit[8];
                 variable vr = rd, volatile : int(8);
                 variable vw = wr : int(8);
               }"#,
        );
    }

    #[test]
    fn error_bit_overlap_between_variables() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = base @ 0 : bit[8];
                 variable lo = a[4..0] : int(5);
                 variable hi = a[7..4] : int(4);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::VBitOverlap));
    }

    #[test]
    fn family_instances_with_distinct_args_do_not_overlap() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register control = base @ 0, mask '000*****' : bit[8];
                 variable IA = control[4..0] : int{0..31};
                 register I(i : int{0..31}) = base @ 1, pre {IA = i} : bit[8];
                 variable d0 = I(0), volatile : int(8);
                 variable d1 = I(1), volatile : int(8);
               }"#,
        );
    }

    #[test]
    fn error_trigger_without_neutral_on_shared_register() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register cmd = base @ 0 : bit[8];
                 variable st = cmd[1..0], write trigger : int(2);
                 variable page = cmd[7..2] : int(6);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::VTriggerConflict));
    }

    #[test]
    fn trigger_with_neutral_on_shared_register_ok() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register cmd = base @ 0 : bit[8];
                 variable st = cmd[1..0], write trigger except NEUTRAL
                   : { NEUTRAL <=> '00', START <=> '01', STOP <=> '10', RSVD <=> '11' };
                 variable page = cmd[7..2] : int(6);
               }"#,
        );
    }

    #[test]
    fn lone_trigger_variable_needs_no_neutral() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register sig = base @ 0 : bit[8];
                 variable signature = sig, volatile, write trigger : int(8);
               }"#,
        );
    }

    #[test]
    fn error_enum_read_mapping_not_exhaustive() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r[1..0] : { A <=> '00', B <=> '01', C <=> '10' };
                 variable rest = r[7..2] : int(6);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::OEnumNotExhaustive));
    }

    #[test]
    fn write_only_enum_needs_no_read_coverage() {
        check_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register cr = write base @ 0, mask '1001000*' : bit[8];
                 variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };
               }"#,
        );
    }

    #[test]
    fn error_readable_variable_with_write_only_enum() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r[0] : { ON => '1', OFF => '0' };
                 variable rest = r[7..1] : int(7);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::ONoReadMapping));
    }

    #[test]
    fn error_mixed_direction_variable() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register ro = read base @ 0 : bit[8];
                 register wo = write base @ 1 : bit[8];
                 variable v = ro[3..0] # wo[3..0] : int(8);
                 variable r2 = ro[7..4], volatile : int(4);
                 variable w2 = wo[7..4] : int(4);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TDirection));
    }

    #[test]
    fn warning_unused_private_memory() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable ghost : bool;
                 register r = base @ 0 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::OUnusedPrivate));
        assert!(!diags.has_errors(), "unused private is a warning, not an error");
    }

    #[test]
    fn busmouse_full_specification_checks_clean() {
        // Figure 1 with masks following the prose convention (`*` =
        // relevant) rather than the figure's inverted rendering.
        check_ok(
            r#"device logitech_busmouse (base : bit[8] port @ {0..3}) {
                 register sig_reg = base @ 1 : bit[8];
                 variable signature = sig_reg, volatile, write trigger : int(8);

                 register cr = write base @ 3, mask '1001000*' : bit[8];
                 variable config = cr[0] : { CONFIGURATION => '1', DEFAULT_MODE => '0' };

                 register interrupt_reg = write base @ 2, mask '000*0000' : bit[8];
                 variable interrupt = interrupt_reg[4] : { ENABLE => '0', DISABLE => '1' };

                 register index_reg = write base @ 2, mask '1**00000' : bit[8];
                 private variable index = index_reg[6..5] : int(2);

                 register x_low  = read base @ 0, pre {index = 0}, mask '....****' : bit[8];
                 register x_high = read base @ 0, pre {index = 1}, mask '....****' : bit[8];
                 register y_low  = read base @ 0, pre {index = 2}, mask '....****' : bit[8];
                 register y_high = read base @ 0, pre {index = 3}, mask '***.****' : bit[8];

                 structure mouse_state = {
                   variable dx = x_high[3..0] # x_low[3..0], volatile : signed int(8);
                   variable dy = y_high[3..0] # y_low[3..0], volatile : signed int(8);
                   variable buttons = y_high[7..5], volatile : int(3);
                 };
               }"#,
        );
    }

    #[test]
    fn interrupt_reg_and_index_reg_share_write_port_via_masks() {
        // The busmouse pattern: two write-only registers on one port with
        // disjoint *relevant* bits are exempt from the overlap check.
        check_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = write base @ 0, mask '000*0000' : bit[8];
                 register b = write base @ 0, mask '1**00000' : bit[8];
                 variable va = a[4] : bool;
                 variable vb = b[6..5] : int(2);
               }"#,
        );
    }

    #[test]
    fn error_overlapping_relevant_mask_bits() {
        let diags = check_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register a = write base @ 0, mask '000**000' : bit[8];
                 register b = write base @ 0, mask '1**0*000' : bit[8];
                 variable va = a[4..3] : int(2);
                 variable vb = b[6..5] # b[3] : int(3);
               }"#,
        );
        // Bit 3 is relevant in both masks.
        assert!(diags.has_code(ErrorCode::VRegisterOverlap));
    }
}
