//! The checked semantic model of a Devil specification.
//!
//! [`CheckedDevice`] is what the rest of the tool chain consumes: names
//! are resolved to indices, register-family instantiations are inlined,
//! conditional declarations are flattened for a concrete parameter
//! binding, and every width/direction fact has been verified.

use devil_syntax::ast::MaskBit;
use devil_syntax::span::Span;
use std::fmt;

/// Index of a port in [`CheckedDevice::ports`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

/// Index of a register in [`CheckedDevice::registers`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub u32);

/// Index of a variable in [`CheckedDevice::variables`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index of a structure in [`CheckedDevice::structures`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

impl fmt::Debug for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port#{}", self.0)
    }
}
impl fmt::Debug for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reg#{}", self.0)
    }
}
impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "var#{}", self.0)
    }
}
impl fmt::Debug for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "struct#{}", self.0)
    }
}

/// A fully checked device specification.
#[derive(Clone, Debug)]
pub struct CheckedDevice {
    /// Device name.
    pub name: String,
    /// Port parameters, in declaration order.
    pub ports: Vec<PortDef>,
    /// Constant integer parameters with their bound values.
    pub int_params: Vec<IntParamDef>,
    /// Registers (families kept symbolic via [`RegDef::params`]).
    pub registers: Vec<RegDef>,
    /// Device variables (public, private, and structure fields).
    pub variables: Vec<VarDef>,
    /// Structures grouping variables.
    pub structures: Vec<StructDef>,
    /// Named type definitions (for omission checking and codegen).
    pub typedefs: Vec<TypeDefSem>,
}

/// A named type definition.
#[derive(Clone, Debug)]
pub struct TypeDefSem {
    /// Type name.
    pub name: String,
    /// The resolved type.
    pub ty: TypeSem,
    /// Declaration span.
    pub span: Span,
}

impl CheckedDevice {
    /// Looks a register up by name.
    pub fn register(&self, name: &str) -> Option<(RegId, &RegDef)> {
        self.registers
            .iter()
            .enumerate()
            .find(|(_, r)| r.name == name)
            .map(|(i, r)| (RegId(i as u32), r))
    }

    /// Looks a variable up by name.
    pub fn variable(&self, name: &str) -> Option<(VarId, &VarDef)> {
        self.variables
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// Looks a structure up by name.
    pub fn structure(&self, name: &str) -> Option<(StructId, &StructDef)> {
        self.structures
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
            .map(|(i, s)| (StructId(i as u32), s))
    }

    /// Looks a port up by name.
    pub fn port(&self, name: &str) -> Option<(PortId, &PortDef)> {
        self.ports
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == name)
            .map(|(i, p)| (PortId(i as u32), p))
    }

    /// The register definition for an id.
    pub fn reg(&self, id: RegId) -> &RegDef {
        &self.registers[id.0 as usize]
    }

    /// The variable definition for an id.
    pub fn var(&self, id: VarId) -> &VarDef {
        &self.variables[id.0 as usize]
    }

    /// The structure definition for an id.
    pub fn strct(&self, id: StructId) -> &StructDef {
        &self.structures[id.0 as usize]
    }

    /// Iterates over the public (non-private, non-field) variables that
    /// make up the device's functional interface, plus structure fields
    /// (which are public through their structure).
    pub fn interface_vars(&self) -> impl Iterator<Item = (VarId, &VarDef)> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.private)
            .map(|(i, v)| (VarId(i as u32), v))
    }
}

/// A declared port parameter.
#[derive(Clone, Debug)]
pub struct PortDef {
    /// Port name.
    pub name: String,
    /// Access width in bits.
    pub width: u32,
    /// Valid offsets, as sorted inclusive ranges.
    pub offsets: Vec<(u64, u64)>,
    /// Declaration span.
    pub span: Span,
}

impl PortDef {
    /// Whether `off` is a declared offset of this port.
    pub fn contains(&self, off: u64) -> bool {
        self.offsets.iter().any(|&(lo, hi)| (lo..=hi).contains(&off))
    }

    /// Iterates over every declared offset.
    pub fn iter_offsets(&self) -> impl Iterator<Item = u64> + '_ {
        self.offsets.iter().flat_map(|&(lo, hi)| lo..=hi)
    }
}

/// A constant integer device parameter and its bound value.
#[derive(Clone, Debug)]
pub struct IntParamDef {
    /// Parameter name.
    pub name: String,
    /// Bound value used to flatten conditional declarations.
    pub value: u64,
    /// Declaration span.
    pub span: Span,
}

/// A formal parameter of a register or variable family.
#[derive(Clone, Debug)]
pub struct FamilyParam {
    /// Parameter name.
    pub name: String,
    /// Valid values, as inclusive ranges.
    pub values: Vec<(u64, u64)>,
    /// Declaration span.
    pub span: Span,
}

impl FamilyParam {
    /// Whether `v` is a legal argument.
    pub fn contains(&self, v: u64) -> bool {
        self.values.iter().any(|&(lo, hi)| (lo..=hi).contains(&v))
    }

    /// Iterates over every legal argument value.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.values.iter().flat_map(|&(lo, hi)| lo..=hi)
    }
}

/// A register definition (concrete or family).
#[derive(Clone, Debug)]
pub struct RegDef {
    /// Register name.
    pub name: String,
    /// Family parameters; empty for concrete registers.
    pub params: Vec<FamilyParam>,
    /// Size in bits.
    pub size: u32,
    /// Port binding used for reads, if readable.
    pub read: Option<PortBinding>,
    /// Port binding used for writes, if writable.
    pub write: Option<PortBinding>,
    /// Normalised mask, exactly `size` entries, LSB at index 0.
    pub mask: Vec<MaskBit>,
    /// Actions performed before each access.
    pub pre: Vec<Action>,
    /// Actions performed after each access.
    pub post: Vec<Action>,
    /// Private-state updates performed on access.
    pub set: Vec<Action>,
    /// Declaration span.
    pub span: Span,
}

impl RegDef {
    /// Whether the register can be read.
    pub fn readable(&self) -> bool {
        self.read.is_some()
    }

    /// Whether the register can be written.
    pub fn writable(&self) -> bool {
        self.write.is_some()
    }

    /// The value forced onto irrelevant bits when writing: `(or_mask,
    /// and_mask)` such that `out = (in & and_mask) | or_mask`.
    pub fn forced_masks(&self) -> (u64, u64) {
        let mut or_mask = 0u64;
        let mut and_mask = !0u64;
        for (i, &b) in self.mask.iter().enumerate() {
            match b {
                MaskBit::Forced1 => or_mask |= 1 << i,
                MaskBit::Forced0 => and_mask &= !(1 << i),
                _ => {}
            }
        }
        if self.size < 64 {
            and_mask &= (1u64 << self.size) - 1;
        }
        (or_mask, and_mask)
    }

    /// Bit mask of the relevant (variable-usable) bits.
    pub fn relevant_bits(&self) -> u64 {
        let mut m = 0u64;
        for (i, &b) in self.mask.iter().enumerate() {
            if b == MaskBit::Relevant {
                m |= 1 << i;
            }
        }
        m
    }
}

/// A resolved port binding `port @ offset`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortBinding {
    /// The port.
    pub port: PortId,
    /// The offset (constant or family-parameter reference).
    pub offset: Offset,
}

/// A register's offset within its port range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offset {
    /// A constant offset.
    Const(u64),
    /// The value of family parameter `params[i]`.
    Param(usize),
}

impl Offset {
    /// Resolves the offset given family-argument values.
    pub fn resolve(self, args: &[u64]) -> u64 {
        match self {
            Offset::Const(v) => v,
            Offset::Param(i) => args[i],
        }
    }
}

/// A pre/post/set action: assign `value` to `target`.
#[derive(Clone, Debug, PartialEq)]
pub struct Action {
    /// What is assigned.
    pub target: ActionTarget,
    /// The assigned value.
    pub value: ActionValue,
    /// Source span.
    pub span: Span,
}

/// The assignable targets of an action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActionTarget {
    /// A device variable (possibly private / unmapped).
    Var(VarId),
    /// A structure (assigned a struct-valued [`ActionValue::Struct`]).
    Struct(StructId),
}

/// The value side of an action.
#[derive(Clone, Debug, PartialEq)]
pub enum ActionValue {
    /// A constant bit value.
    Const(u64),
    /// Any value (strobe; the generated code writes 0).
    Any,
    /// The current value of family parameter `i` of the enclosing
    /// register family.
    Param(usize),
    /// The current (cached) value of another variable.
    Var(VarId),
    /// Per-field values for a structure target.
    Struct(Vec<(VarId, ActionValue)>),
}

/// A variable's behaviour, from its attributes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Behavior {
    /// Reads are not idempotent (`volatile`).
    pub volatile: bool,
    /// Generate block-transfer stubs (`block`).
    pub block: bool,
    /// Writes trigger a device action (`write trigger` / `trigger`).
    pub write_trigger: bool,
    /// Reads trigger a device action (`read trigger` / `trigger`).
    pub read_trigger: bool,
}

/// The neutral value of a trigger variable (`except NEUTRAL`), i.e. the
/// value that may safely be written without triggering, or the sole
/// triggering value (`for true` inverts the semantics: every *other*
/// value is neutral).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Neutral {
    /// `except X`: writing the given raw bits does not trigger.
    Except(u64),
    /// `for X`: only the given raw bits trigger.
    For(u64),
}

/// A semantic type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeSem {
    /// Unsigned integer of `n` bits.
    UInt(u32),
    /// Signed (two's-complement) integer of `n` bits.
    SInt(u32),
    /// Boolean (one bit).
    Bool,
    /// Integer restricted to a value set; `width` is the variable's bit
    /// width (which may exceed the minimum needed for `max`).
    IntSet {
        /// Bit width of the backing bits.
        width: u32,
        /// Allowed values as inclusive ranges.
        set: Vec<(u64, u64)>,
    },
    /// Enumerated type.
    Enum(EnumSem),
}

impl TypeSem {
    /// The bit width of values of this type.
    pub fn width(&self) -> u32 {
        match self {
            TypeSem::UInt(n) | TypeSem::SInt(n) => *n,
            TypeSem::Bool => 1,
            TypeSem::IntSet { width, .. } => *width,
            TypeSem::Enum(e) => e.width,
        }
    }

    /// Whether raw bits `v` are a legal *written* value of the type.
    pub fn valid_write(&self, v: u64) -> bool {
        match self {
            TypeSem::UInt(n) | TypeSem::SInt(n) => *n == 64 || v < (1u64 << *n),
            TypeSem::Bool => v <= 1,
            TypeSem::IntSet { set, .. } => set.iter().any(|&(lo, hi)| (lo..=hi).contains(&v)),
            TypeSem::Enum(e) => e.arms.iter().any(|a| a.writable && a.value == v),
        }
    }

    /// Whether raw bits `v` are a legal *read* value of the type.
    pub fn valid_read(&self, v: u64) -> bool {
        match self {
            TypeSem::Enum(e) => e.arms.iter().any(|a| a.readable && a.value == v),
            other => other.valid_write(v),
        }
    }
}

/// A checked enumerated type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumSem {
    /// Optional name when defined via `type`.
    pub name: Option<String>,
    /// Pattern width in bits.
    pub width: u32,
    /// The mapping arms.
    pub arms: Vec<EnumArmSem>,
}

impl EnumSem {
    /// Looks up a symbol, returning its raw value.
    pub fn value_of(&self, sym: &str) -> Option<u64> {
        self.arms.iter().find(|a| a.sym == sym).map(|a| a.value)
    }

    /// Looks up the symbol readable as raw value `v`.
    pub fn sym_for_read(&self, v: u64) -> Option<&str> {
        self.arms.iter().find(|a| a.readable && a.value == v).map(|a| a.sym.as_str())
    }
}

/// One arm of a checked enum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumArmSem {
    /// Symbolic name.
    pub sym: String,
    /// Raw bit value.
    pub value: u64,
    /// Valid when reading.
    pub readable: bool,
    /// Valid when writing.
    pub writable: bool,
}

/// A device variable.
#[derive(Clone, Debug)]
pub struct VarDef {
    /// Variable name.
    pub name: String,
    /// Hidden from the functional interface.
    pub private: bool,
    /// Family parameters for variable arrays; empty otherwise.
    pub params: Vec<FamilyParam>,
    /// Backing register bits, most-significant chunk first; `None` for
    /// unmapped private memory variables.
    pub bits: Option<Vec<BitChunk>>,
    /// The variable's type.
    pub ty: TypeSem,
    /// Behaviour flags.
    pub behavior: Behavior,
    /// Neutral value for trigger variables.
    pub neutral: Option<Neutral>,
    /// Private-state updates performed when the variable is written.
    pub set: Vec<Action>,
    /// Explicit register access order (per-variable serialization).
    pub serialized: Option<SerPlan>,
    /// Parent structure when the variable is a field.
    pub parent: Option<StructId>,
    /// Declaration span.
    pub span: Span,
}

impl VarDef {
    /// Total bit width of the variable.
    pub fn width(&self) -> u32 {
        match &self.bits {
            Some(chunks) => chunks.iter().map(BitChunk::width).sum(),
            None => self.ty.width(),
        }
    }

    /// Whether the variable is an unmapped private memory cell.
    pub fn is_memory(&self) -> bool {
        self.bits.is_none()
    }
}

/// A contiguous run of bits taken from one register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitChunk {
    /// The source register.
    pub reg: RegId,
    /// Arguments when the register is a family; indices refer to the
    /// *variable's* family parameters or constants.
    pub args: Vec<ChunkArg>,
    /// Selected bit ranges `(hi, lo)`, most significant first.
    pub ranges: Vec<(u32, u32)>,
}

impl BitChunk {
    /// Number of bits this chunk contributes.
    pub fn width(&self) -> u32 {
        self.ranges.iter().map(|&(hi, lo)| hi - lo + 1).sum()
    }
}

/// An argument to a register family inside a bit chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkArg {
    /// A constant.
    Const(u64),
    /// The enclosing variable's family parameter `i`.
    Param(usize),
}

impl ChunkArg {
    /// Resolves against the variable's family arguments.
    pub fn resolve(self, args: &[u64]) -> u64 {
        match self {
            ChunkArg::Const(v) => v,
            ChunkArg::Param(i) => args[i],
        }
    }
}

/// A checked serialization plan.
#[derive(Clone, Debug)]
pub struct SerPlan {
    /// Ordered steps.
    pub steps: Vec<SerStep>,
}

/// One step of a serialization plan.
#[derive(Clone, Debug)]
pub enum SerStep {
    /// Access the register next.
    Reg(RegId),
    /// Conditional access based on member-variable values.
    If {
        /// The guard.
        cond: CondSem,
        /// Steps when the guard holds.
        then: Vec<SerStep>,
        /// Steps otherwise.
        els: Vec<SerStep>,
    },
}

/// A checked guard condition.
#[derive(Clone, Debug)]
pub enum CondSem {
    /// Compare a variable's raw bits to a constant.
    Cmp {
        /// The variable.
        var: VarId,
        /// `true` for `==`, `false` for `!=`.
        eq: bool,
        /// Raw comparison value.
        value: u64,
    },
    /// Conjunction.
    And(Box<CondSem>, Box<CondSem>),
    /// Disjunction.
    Or(Box<CondSem>, Box<CondSem>),
    /// Negation.
    Not(Box<CondSem>),
}

impl CondSem {
    /// Evaluates the guard with a variable-value lookup.
    pub fn eval(&self, lookup: &dyn Fn(VarId) -> u64) -> bool {
        match self {
            CondSem::Cmp { var, eq, value } => (lookup(*var) == *value) == *eq,
            CondSem::And(a, b) => a.eval(lookup) && b.eval(lookup),
            CondSem::Or(a, b) => a.eval(lookup) || b.eval(lookup),
            CondSem::Not(a) => !a.eval(lookup),
        }
    }
}

/// A structure: a group of variables accessed consistently.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Structure name.
    pub name: String,
    /// Member variables, in declaration order.
    pub fields: Vec<VarId>,
    /// Access order over the registers backing the fields.
    pub serialized: Option<SerPlan>,
    /// Declaration span.
    pub span: Span,
}

/// Minimum number of bits needed to represent `v`.
pub fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_mask(mask: &str) -> RegDef {
        RegDef {
            name: "r".into(),
            params: vec![],
            size: mask.len() as u32,
            read: None,
            write: None,
            mask: mask
                .chars()
                .rev() // model stores LSB at index 0
                .map(|c| MaskBit::from_char(c).unwrap())
                .collect(),
            pre: vec![],
            post: vec![],
            set: vec![],
            span: Span::DUMMY,
        }
    }

    #[test]
    fn forced_masks_follow_paper_semantics() {
        // index_reg mask (prose convention): bit7 forced 1, bits 6..5
        // relevant, bits 4..0 forced 0.
        let r = reg_with_mask("1**00000");
        let (or_mask, and_mask) = r.forced_masks();
        assert_eq!(or_mask, 0b1000_0000);
        assert_eq!(and_mask, 0b1110_0000);
        assert_eq!(r.relevant_bits(), 0b0110_0000);
        // Writing index value 0b10 at bits 6..5: in = 0b0100_0000.
        let written = (0b0100_0000u64 & and_mask) | or_mask;
        assert_eq!(written, 0b1100_0000);
    }

    #[test]
    fn default_mask_is_all_relevant() {
        let r = reg_with_mask("********");
        assert_eq!(r.relevant_bits(), 0xff);
        assert_eq!(r.forced_masks(), (0, 0xff));
    }

    #[test]
    fn irrelevant_bits_are_neither_forced_nor_relevant() {
        let r = reg_with_mask("...*....");
        assert_eq!(r.relevant_bits(), 0b0001_0000);
        assert_eq!(r.forced_masks(), (0, 0xff));
    }

    #[test]
    fn type_widths() {
        assert_eq!(TypeSem::UInt(8).width(), 8);
        assert_eq!(TypeSem::SInt(8).width(), 8);
        assert_eq!(TypeSem::Bool.width(), 1);
        assert_eq!(TypeSem::IntSet { width: 8, set: vec![(0, 31)] }.width(), 8);
    }

    #[test]
    fn type_validity() {
        let set = TypeSem::IntSet { width: 8, set: vec![(0, 17), (25, 25)] };
        assert!(set.valid_write(17));
        assert!(set.valid_write(25));
        assert!(!set.valid_write(18));
        let en = TypeSem::Enum(EnumSem {
            name: None,
            width: 1,
            arms: vec![
                EnumArmSem { sym: "ENABLE".into(), value: 0, readable: false, writable: true },
                EnumArmSem { sym: "DISABLE".into(), value: 1, readable: false, writable: true },
            ],
        });
        assert!(en.valid_write(0) && en.valid_write(1));
        assert!(!en.valid_read(0), "write-only arms are not readable");
        assert!(TypeSem::UInt(64).valid_write(u64::MAX));
        assert!(!TypeSem::UInt(2).valid_write(4));
        assert!(TypeSem::SInt(8).valid_write(0xff), "signed types accept raw patterns");
    }

    #[test]
    fn enum_lookup() {
        let e = EnumSem {
            name: Some("cfg".into()),
            width: 1,
            arms: vec![
                EnumArmSem { sym: "ON".into(), value: 1, readable: true, writable: true },
                EnumArmSem { sym: "OFF".into(), value: 0, readable: true, writable: true },
            ],
        };
        assert_eq!(e.value_of("ON"), Some(1));
        assert_eq!(e.value_of("MISSING"), None);
        assert_eq!(e.sym_for_read(0), Some("OFF"));
    }

    #[test]
    fn chunk_width_sums_ranges() {
        let c = BitChunk { reg: RegId(0), args: vec![], ranges: vec![(2, 2), (7, 4)] };
        assert_eq!(c.width(), 5);
    }

    #[test]
    fn cond_eval() {
        let c = CondSem::And(
            Box::new(CondSem::Cmp { var: VarId(0), eq: true, value: 1 }),
            Box::new(CondSem::Not(Box::new(CondSem::Cmp { var: VarId(1), eq: true, value: 0 }))),
        );
        let lookup = |v: VarId| if v.0 == 0 { 1 } else { 7 };
        assert!(c.eval(&lookup));
        let lookup2 = |v: VarId| if v.0 == 0 { 1 } else { 0 };
        assert!(!c.eval(&lookup2));
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(31), 5);
        assert_eq!(bits_for(32), 6);
    }

    #[test]
    fn offset_resolution() {
        assert_eq!(Offset::Const(3).resolve(&[]), 3);
        assert_eq!(Offset::Param(0).resolve(&[9]), 9);
        assert_eq!(ChunkArg::Param(1).resolve(&[4, 5]), 5);
    }

    #[test]
    fn port_membership() {
        let p = PortDef {
            name: "base".into(),
            width: 8,
            offsets: vec![(0, 3), (7, 7)],
            span: Span::DUMMY,
        };
        assert!(p.contains(0) && p.contains(3) && p.contains(7));
        assert!(!p.contains(4));
        assert_eq!(p.iter_offsets().collect::<Vec<_>>(), vec![0, 1, 2, 3, 7]);
    }
}
