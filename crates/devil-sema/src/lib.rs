//! Semantic analysis and verification for Devil specifications.
//!
//! This crate lowers the AST produced by `devil-syntax` into a checked
//! model ([`model::CheckedDevice`]) and implements the consistency
//! verifications of the paper's Section 3.1: strong typing, no omission,
//! no double definition, and no overlapping definitions.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! device demo (base : bit[8] port @ {0..1}) {
//!     register status = read base @ 0 : bit[8];
//!     register ctl    = write base @ 1 : bit[8];
//!     variable ready  = status[0], volatile : bool;
//!     variable code   = status[7..1], volatile : int(7);
//!     variable speed  = ctl : int(8);
//! }
//! "#;
//! let checked = devil_sema::check_source(src, &[]).expect("valid spec");
//! assert_eq!(checked.name, "demo");
//! assert_eq!(checked.registers.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod checks;
pub mod model;
pub mod resolve;

pub use model::CheckedDevice;

use devil_syntax::diag::DiagSink;

/// Parses, resolves and fully checks a specification in one call.
///
/// `int_params` binds the device's constant integer parameters (used by
/// conditional declarations). Returns the checked model, or the combined
/// diagnostics of whichever stage failed.
pub fn check_source(src: &str, int_params: &[(&str, u64)]) -> Result<CheckedDevice, DiagSink> {
    match check_source_with_warnings(src, int_params) {
        (Some(model), _) => Ok(model),
        (None, diags) => Err(diags),
    }
}

/// Like [`check_source`] but also returns non-error diagnostics on
/// success, for tools that surface warnings.
pub fn check_source_with_warnings(
    src: &str,
    int_params: &[(&str, u64)],
) -> (Option<CheckedDevice>, DiagSink) {
    let (device, mut diags) = devil_syntax::parse(src);
    let Some(device) = device else {
        return (None, diags);
    };
    if diags.has_errors() {
        return (None, diags);
    }
    let model = resolve::resolve(&device, int_params, &mut diags);
    if diags.has_errors() {
        return (None, diags);
    }
    checks::check(&model, &mut diags);
    if diags.has_errors() {
        (None, diags)
    } else {
        (Some(model), diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_accepts_valid() {
        let m = check_source(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r : int(8);
               }"#,
            &[],
        )
        .unwrap();
        assert_eq!(m.variables.len(), 1);
    }

    #[test]
    fn check_source_rejects_parse_error() {
        let err = check_source("device", &[]).unwrap_err();
        assert!(err.has_errors());
    }

    #[test]
    fn check_source_rejects_semantic_error() {
        let err = check_source(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = missing : int(8);
               }"#,
            &[],
        )
        .unwrap_err();
        assert!(err.has_code(devil_syntax::ErrorCode::TUndefined));
    }

    #[test]
    fn warnings_do_not_fail_check_source() {
        let (m, diags) = check_source_with_warnings(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable scratch : bool;
                 register r = base @ 0 : bit[8];
                 variable v = r : int(8);
               }"#,
            &[],
        );
        assert!(m.is_some());
        assert!(diags.has_code(devil_syntax::ErrorCode::OUnusedPrivate));
    }
}
