//! Name resolution and lowering from AST to the checked model.
//!
//! Resolution runs in phases so that forward references work (the paper's
//! specifications freely reference variables from register pre-actions
//! declared earlier in the file):
//!
//! 1. flatten conditional declarations against the bound parameters,
//! 2. collect all names (duplicate detection),
//! 3. resolve named types,
//! 4. resolve register skeletons (ports, sizes, masks, families),
//! 5. resolve variables (bit chunks, types, behaviours),
//! 6. resolve actions (register pre/post/set, variable set) and
//!    serialization plans, which may reference any variable.

use crate::model::*;
use devil_syntax::ast::{self, MaskBit};
use devil_syntax::diag::{DiagSink, ErrorCode};
use devil_syntax::span::Span;
use std::collections::HashMap;

/// Resolves `device` into a [`CheckedDevice`], binding the constant
/// integer parameters to `int_params` (name/value pairs).
///
/// Diagnostics go into `diags`; a model is returned on a best-effort
/// basis even in the presence of errors so later stages can be exercised
/// by tooling, but callers must treat it as valid only when
/// `!diags.has_errors()`.
pub fn resolve(
    device: &ast::Device,
    int_params: &[(&str, u64)],
    diags: &mut DiagSink,
) -> CheckedDevice {
    Resolver::new(device, int_params, diags).run()
}

struct Resolver<'a, 'd> {
    dev: &'a ast::Device,
    bindings: HashMap<String, u64>,
    diags: &'d mut DiagSink,

    ports: Vec<PortDef>,
    int_params: Vec<IntParamDef>,
    registers: Vec<RegDef>,
    variables: Vec<VarDef>,
    structures: Vec<StructDef>,

    /// Named-type table: name -> resolved type.
    types: HashMap<String, (TypeSem, Span)>,
    /// All declared names with their kind, for duplicate detection.
    names: HashMap<String, (&'static str, Span)>,

    /// AST declarations flattened through `if` groups.
    reg_decls: Vec<&'a ast::RegisterDecl>,
    var_decls: Vec<(&'a ast::VariableDecl, Option<StructId>)>,
    struct_decls: Vec<&'a ast::StructureDecl>,
}

impl<'a, 'd> Resolver<'a, 'd> {
    fn new(dev: &'a ast::Device, int_params: &[(&str, u64)], diags: &'d mut DiagSink) -> Self {
        Resolver {
            dev,
            bindings: int_params.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
            diags,
            ports: Vec::new(),
            int_params: Vec::new(),
            registers: Vec::new(),
            variables: Vec::new(),
            structures: Vec::new(),
            types: HashMap::new(),
            names: HashMap::new(),
            reg_decls: Vec::new(),
            var_decls: Vec::new(),
            struct_decls: Vec::new(),
        }
    }

    fn run(mut self) -> CheckedDevice {
        self.resolve_params();
        let decls: Vec<&ast::Decl> = self.dev.decls.iter().collect();
        self.flatten_decls(&decls);
        self.resolve_typedefs();
        self.resolve_register_skeletons();
        self.resolve_variables();
        self.resolve_register_actions();
        self.resolve_serializations();
        let mut typedefs: Vec<TypeDefSem> = self
            .types
            .into_iter()
            .map(|(name, (ty, span))| TypeDefSem { name, ty, span })
            .collect();
        typedefs.sort_by_key(|a| a.span);
        CheckedDevice {
            name: self.dev.name.name.clone(),
            ports: self.ports,
            int_params: self.int_params,
            registers: self.registers,
            variables: self.variables,
            structures: self.structures,
            typedefs,
        }
    }

    fn declare(&mut self, name: &ast::Ident, kind: &'static str) -> bool {
        if let Some((prev_kind, prev_span)) = self.names.get(&name.name) {
            let prev_span = *prev_span;
            let prev_kind = *prev_kind;
            self.diags.push(
                devil_syntax::Diagnostic::error(
                    ErrorCode::DDuplicateName,
                    format!("`{}` is declared twice (first as a {prev_kind})", name.name),
                    name.span,
                )
                .with_note("first declaration here", Some(prev_span)),
            );
            false
        } else {
            self.names.insert(name.name.clone(), (kind, name.span));
            true
        }
    }

    // ---- phase 1: parameters ----

    fn resolve_params(&mut self) {
        for p in &self.dev.params {
            if !self.declare(&p.name, "device parameter") {
                continue;
            }
            match &p.kind {
                ast::ParamKind::Port { width, range } => {
                    let offsets = normalize_set(range);
                    self.ports.push(PortDef {
                        name: p.name.name.clone(),
                        width: *width,
                        offsets,
                        span: p.span,
                    });
                }
                ast::ParamKind::Int { ty } => {
                    let value = match self.bindings.get(&p.name.name) {
                        Some(v) => *v,
                        None => {
                            self.diags.error(
                                ErrorCode::TCondGuard,
                                format!(
                                    "integer device parameter `{}` must be bound to a value to check this device",
                                    p.name.name
                                ),
                                p.span,
                            );
                            0
                        }
                    };
                    // Width check against the declared type.
                    if let ast::TypeKind::UInt(n) = ty.kind {
                        if n < 64 && value >= (1u64 << n) {
                            self.diags.error(
                                ErrorCode::TValueRange,
                                format!(
                                    "bound value {value} does not fit parameter `{}` of type int({n})",
                                    p.name.name
                                ),
                                p.span,
                            );
                        }
                    }
                    self.int_params.push(IntParamDef {
                        name: p.name.name.clone(),
                        value,
                        span: p.span,
                    });
                }
            }
        }
        // Reject bindings that don't correspond to any parameter.
        let declared: Vec<&str> = self.int_params.iter().map(|p| p.name.as_str()).collect();
        let unknown: Vec<String> =
            self.bindings.keys().filter(|k| !declared.contains(&k.as_str())).cloned().collect();
        for k in unknown {
            self.diags.error(
                ErrorCode::TParamMismatch,
                format!("binding for unknown device parameter `{k}`"),
                self.dev.span,
            );
        }
    }

    // ---- phase 2: flatten conditionals, collect declarations ----

    fn flatten_decls(&mut self, decls: &[&'a ast::Decl]) {
        for d in decls {
            match d {
                ast::Decl::Register(r) => self.reg_decls.push(r),
                ast::Decl::Variable(v) => self.var_decls.push((v, None)),
                ast::Decl::Structure(s) => self.struct_decls.push(s),
                ast::Decl::TypeDef(_) => {} // handled in resolve_typedefs
                ast::Decl::Cond(c) => {
                    let taken = self.eval_param_cond(&c.cond);
                    let branch: Vec<&ast::Decl> =
                        if taken { c.then.iter().collect() } else { c.els.iter().collect() };
                    self.flatten_decls(&branch);
                }
            }
        }
    }

    /// Evaluates a declaration-level guard over integer parameters.
    fn eval_param_cond(&mut self, cond: &ast::Cond) -> bool {
        match cond {
            ast::Cond::Cmp { lhs, op, rhs, span } => {
                let lv = match self.bindings.get(&lhs.name) {
                    Some(v) => *v,
                    None => {
                        self.diags.error(
                            ErrorCode::TCondGuard,
                            format!(
                                "conditional declarations may only test integer device parameters; `{}` is not one",
                                lhs.name
                            ),
                            lhs.span,
                        );
                        return false;
                    }
                };
                let rv = match rhs {
                    ast::ConstValue::Int(v, _) => *v,
                    ast::ConstValue::Bool(b, _) => *b as u64,
                    ast::ConstValue::Bits(b, _) => u64::from_str_radix(b, 2).unwrap_or(0),
                    ast::ConstValue::Sym(s) => {
                        self.diags.error(
                            ErrorCode::TCondGuard,
                            format!(
                                "symbol `{}` cannot be compared against a device parameter",
                                s.name
                            ),
                            *span,
                        );
                        return false;
                    }
                };
                match op {
                    ast::CmpOp::Eq => lv == rv,
                    ast::CmpOp::Ne => lv != rv,
                }
            }
            ast::Cond::And(a, b) => {
                let av = self.eval_param_cond(a);
                let bv = self.eval_param_cond(b);
                av && bv
            }
            ast::Cond::Or(a, b) => {
                let av = self.eval_param_cond(a);
                let bv = self.eval_param_cond(b);
                av || bv
            }
            ast::Cond::Not(c) => !self.eval_param_cond(c),
        }
    }

    // ---- phase 3: named types ----

    fn resolve_typedefs(&mut self) {
        // Typedefs are collected from the original declaration list (not
        // the flattened one) because they are mode-independent.
        fn collect<'x>(decls: &'x [ast::Decl], out: &mut Vec<&'x ast::TypeDef>) {
            for d in decls {
                match d {
                    ast::Decl::TypeDef(t) => out.push(t),
                    ast::Decl::Cond(c) => {
                        collect(&c.then, out);
                        collect(&c.els, out);
                    }
                    _ => {}
                }
            }
        }
        let mut defs = Vec::new();
        collect(&self.dev.decls, &mut defs);
        for t in defs {
            if !self.declare(&t.name, "type") {
                continue;
            }
            if let Some(sem) = self.resolve_type(&t.ty, None, Some(&t.name.name)) {
                self.types.insert(t.name.name.clone(), (sem, t.span));
            }
        }
    }

    /// Resolves a type expression. `var_width` is the bit width of the
    /// variable the type is attached to (None when unknown, e.g. in a
    /// typedef); `enum_name` names the enum when this is a typedef body.
    fn resolve_type(
        &mut self,
        ty: &ast::Type,
        var_width: Option<u32>,
        enum_name: Option<&str>,
    ) -> Option<TypeSem> {
        match &ty.kind {
            ast::TypeKind::UInt(n) => Some(TypeSem::UInt(*n)),
            ast::TypeKind::SInt(n) => Some(TypeSem::SInt(*n)),
            ast::TypeKind::Bool => Some(TypeSem::Bool),
            ast::TypeKind::IntSet(set) => {
                let ranges = normalize_set(set);
                let max = ranges.iter().map(|&(_, hi)| hi).max().unwrap_or(0);
                let min_width = bits_for(max).max(1);
                let width = match var_width {
                    Some(w) => {
                        if w < min_width {
                            self.diags.error(
                                ErrorCode::TWidthMismatch,
                                format!(
                                    "value set needs {min_width} bits for its maximum {max}, but the variable has only {w}"
                                ),
                                ty.span,
                            );
                        }
                        w
                    }
                    None => min_width,
                };
                Some(TypeSem::IntSet { width, set: ranges })
            }
            ast::TypeKind::Enum(e) => self.resolve_enum(e, var_width, enum_name),
            ast::TypeKind::Named(name) => match self.types.get(&name.name) {
                Some((sem, _)) => {
                    let mut sem = sem.clone();
                    if let (TypeSem::Enum(en), Some(w)) = (&sem, var_width) {
                        if en.width != w {
                            self.diags.error(
                                ErrorCode::TEnumPatternWidth,
                                format!(
                                    "type `{}` has {}-bit patterns but the variable is {w} bits wide",
                                    name.name, en.width
                                ),
                                name.span,
                            );
                        }
                    }
                    if let (TypeSem::IntSet { width, set }, Some(w)) = (&sem, var_width) {
                        let max = set.iter().map(|&(_, hi)| hi).max().unwrap_or(0);
                        if bits_for(max).max(1) > w {
                            self.diags.error(
                                ErrorCode::TWidthMismatch,
                                format!("type `{}` does not fit in {w} bits", name.name),
                                name.span,
                            );
                        }
                        sem = TypeSem::IntSet { width: w.max(*width), set: set.clone() };
                    }
                    Some(sem)
                }
                None => {
                    self.diags.error(
                        ErrorCode::TUndefined,
                        format!("undefined type `{}`", name.name),
                        name.span,
                    );
                    None
                }
            },
        }
    }

    fn resolve_enum(
        &mut self,
        e: &ast::EnumType,
        var_width: Option<u32>,
        name: Option<&str>,
    ) -> Option<TypeSem> {
        let width = match var_width {
            Some(w) => w,
            None => e.arms.first().map_or(1, |a| a.pattern.len() as u32),
        };
        let mut arms: Vec<EnumArmSem> = Vec::new();
        for arm in &e.arms {
            if arm.pattern.len() as u32 != width {
                self.diags.error(
                    ErrorCode::TEnumPatternWidth,
                    format!(
                        "bit pattern `'{}'` has {} bits but {} are required",
                        arm.pattern,
                        arm.pattern.len(),
                        width
                    ),
                    arm.pattern_span,
                );
            }
            let value = u64::from_str_radix(&arm.pattern, 2).unwrap_or(0);
            if arms.iter().any(|a| a.sym == arm.sym.name) {
                self.diags.error(
                    ErrorCode::DDuplicateEnumSym,
                    format!("enum symbol `{}` is defined twice", arm.sym.name),
                    arm.sym.span,
                );
                continue;
            }
            let readable = arm.dir.readable();
            let writable = arm.dir.writable();
            if arms
                .iter()
                .any(|a| a.value == value && ((a.readable && readable) || (a.writable && writable)))
            {
                self.diags.error(
                    ErrorCode::DDuplicateEnumPattern,
                    format!(
                        "bit pattern `'{}'` is mapped twice for the same direction",
                        arm.pattern
                    ),
                    arm.pattern_span,
                );
                continue;
            }
            arms.push(EnumArmSem { sym: arm.sym.name.clone(), value, readable, writable });
        }
        Some(TypeSem::Enum(EnumSem { name: name.map(str::to_string), width, arms }))
    }

    // ---- phase 4: register skeletons ----

    fn resolve_register_skeletons(&mut self) {
        // Two passes: first declare all names (so instances can reference
        // families declared later), then resolve bodies.
        let decls = std::mem::take(&mut self.reg_decls);
        for r in &decls {
            self.declare(&r.name, "register");
        }
        // Family table: name -> index into self.registers once pushed.
        // Resolve in source order; instances of not-yet-resolved families
        // are handled by a second sweep.
        let mut pending: Vec<&ast::RegisterDecl> = Vec::new();
        for r in &decls {
            if let ast::RegSpec::Instance { .. } = &r.spec {
                pending.push(r);
                continue;
            }
            if let Some(def) = self.resolve_concrete_register(r) {
                self.registers.push(def);
            }
        }
        for r in pending {
            if let Some(def) = self.resolve_instance_register(r) {
                self.registers.push(def);
            }
        }
        self.reg_decls = decls;
    }

    fn resolve_family_params(&mut self, params: &[ast::RegParam]) -> Vec<FamilyParam> {
        let mut out = Vec::new();
        for p in params {
            if out.iter().any(|f: &FamilyParam| f.name == p.name.name) {
                self.diags.error(
                    ErrorCode::DDuplicateParam,
                    format!("family parameter `{}` is declared twice", p.name.name),
                    p.name.span,
                );
                continue;
            }
            let values = match &p.ty.kind {
                ast::TypeKind::IntSet(set) => normalize_set(set),
                ast::TypeKind::UInt(n) => {
                    let hi = if *n >= 64 { u64::MAX } else { (1u64 << *n) - 1 };
                    vec![(0, hi)]
                }
                _ => {
                    self.diags.error(
                        ErrorCode::TParamMismatch,
                        format!(
                            "family parameter `{}` must have an integer type (`int(n)` or `int{{..}}`)",
                            p.name.name
                        ),
                        p.ty.span,
                    );
                    vec![(0, 0)]
                }
            };
            out.push(FamilyParam { name: p.name.name.clone(), values, span: p.span });
        }
        out
    }

    fn resolve_concrete_register(&mut self, r: &ast::RegisterDecl) -> Option<RegDef> {
        let params = self.resolve_family_params(&r.params);
        let size = match r.size {
            Some((n, _)) => n,
            None => {
                self.diags.error(
                    ErrorCode::TMissingType,
                    format!("register `{}` needs an explicit size `: bit[n]`", r.name.name),
                    r.span,
                );
                8
            }
        };
        let (read, write) = match &r.spec {
            ast::RegSpec::Port { mode, port } => {
                let b = self.resolve_binding(port, &params, size)?;
                match mode {
                    Some(ast::Mode::Read) => (Some(b), None),
                    Some(ast::Mode::Write) => (None, Some(b)),
                    None => (Some(b.clone()), Some(b)),
                }
            }
            ast::RegSpec::Ports { read, write } => {
                let rb = self.resolve_binding(read, &params, size);
                let wb = self.resolve_binding(write, &params, size);
                (rb, wb)
            }
            ast::RegSpec::Instance { .. } => unreachable!("instances resolved separately"),
        };
        let mask = self.resolve_mask(&r.attrs, size, r.span);
        Some(RegDef {
            name: r.name.name.clone(),
            params,
            size,
            read,
            write,
            mask,
            pre: Vec::new(),
            post: Vec::new(),
            set: Vec::new(),
            span: r.span,
        })
    }

    fn resolve_instance_register(&mut self, r: &ast::RegisterDecl) -> Option<RegDef> {
        let ast::RegSpec::Instance { family: family_name, args } = &r.spec else { unreachable!() };
        let Some((_, fam)) = self.find_register(&family_name.name) else {
            self.diags.error(
                ErrorCode::TUndefined,
                format!("undefined register family `{}`", family_name.name),
                family_name.span,
            );
            return None;
        };
        let fam = fam.clone();
        if !r.params.is_empty() {
            self.diags.error(
                ErrorCode::TParamMismatch,
                "a register-family instantiation cannot itself declare parameters",
                r.span,
            );
        }
        if args.len() != fam.params.len() {
            self.diags.error(
                ErrorCode::TParamMismatch,
                format!(
                    "family `{}` takes {} argument(s), {} supplied",
                    fam.name,
                    fam.params.len(),
                    args.len()
                ),
                r.span,
            );
            return None;
        }
        let mut values = Vec::new();
        for (a, p) in args.iter().zip(&fam.params) {
            match a {
                ast::Expr::Int(v, span) => {
                    if !p.contains(*v) {
                        self.diags.error(
                            ErrorCode::TParamMismatch,
                            format!("argument {v} is outside parameter `{}`'s value set", p.name),
                            *span,
                        );
                    }
                    values.push(*v);
                }
                ast::Expr::Sym(s) => {
                    self.diags.error(
                        ErrorCode::TParamMismatch,
                        format!(
                            "family instantiation arguments must be constants, got `{}`",
                            s.name
                        ),
                        s.span,
                    );
                    values.push(0);
                }
            }
        }
        // Inline the family: concrete ports, inherited or overridden mask.
        let size = match r.size {
            Some((n, nspan)) => {
                if n != fam.size {
                    self.diags.error(
                        ErrorCode::TWidthMismatch,
                        format!("instance size {n} differs from family size {}", fam.size),
                        nspan,
                    );
                }
                fam.size
            }
            None => fam.size,
        };
        let resolve_b = |b: &PortBinding| PortBinding {
            port: b.port,
            offset: Offset::Const(b.offset.resolve(&values)),
        };
        let read = fam.read.as_ref().map(resolve_b);
        let write = fam.write.as_ref().map(resolve_b);
        let mask = if r.attrs.iter().any(|a| matches!(a, ast::RegAttr::Mask(_))) {
            self.resolve_mask(&r.attrs, size, r.span)
        } else {
            fam.mask.clone()
        };
        // Action resolution happens later; remember the instantiation so
        // family-parameter references can be substituted.
        Some(RegDef {
            name: r.name.name.clone(),
            params: Vec::new(),
            size,
            read,
            write,
            mask,
            pre: Vec::new(),
            post: Vec::new(),
            set: Vec::new(),
            span: r.span,
        })
    }

    fn resolve_binding(
        &mut self,
        port: &ast::PortExpr,
        params: &[FamilyParam],
        size: u32,
    ) -> Option<PortBinding> {
        let Some((pid, pdef)) = self.find_port(&port.base.name) else {
            let kind = self.names.get(&port.base.name).map(|(k, _)| *k);
            let code = if kind.is_some() { ErrorCode::TWrongKind } else { ErrorCode::TUndefined };
            self.diags.error(code, format!("`{}` is not a port", port.base.name), port.base.span);
            return None;
        };
        let pdef_width = pdef.width;
        let pdef_clone = pdef.clone();
        if pdef_width != size {
            self.diags.error(
                ErrorCode::TWidthMismatch,
                format!(
                    "register size ({size} bits) must match the access width of port `{}` ({} bits)",
                    pdef_clone.name, pdef_width
                ),
                port.span,
            );
        }
        let offset = match &port.offset {
            Some(ast::OffsetExpr::Int(v, vspan)) => {
                if !pdef_clone.contains(*v) {
                    self.diags.error(
                        ErrorCode::TPortOffset,
                        format!(
                            "offset {v} is outside the declared range of port `{}`",
                            pdef_clone.name
                        ),
                        *vspan,
                    );
                }
                Offset::Const(*v)
            }
            Some(ast::OffsetExpr::Param(p)) => {
                match params.iter().position(|fp| fp.name == p.name) {
                    Some(i) => {
                        // Every value the parameter can take must be a
                        // valid offset.
                        for v in params[i].iter() {
                            if !pdef_clone.contains(v) {
                                self.diags.error(
                                    ErrorCode::TPortOffset,
                                    format!(
                                        "parameter `{}` can be {v}, which is outside port `{}`'s range",
                                        p.name, pdef_clone.name
                                    ),
                                    p.span,
                                );
                                break;
                            }
                        }
                        Offset::Param(i)
                    }
                    None => {
                        self.diags.error(
                            ErrorCode::TUndefined,
                            format!("`{}` is not a parameter of this register", p.name),
                            p.span,
                        );
                        Offset::Const(0)
                    }
                }
            }
            None => {
                // A bare port reference uses the port's sole offset; the
                // port must have exactly one.
                let offs: Vec<u64> = pdef_clone.iter_offsets().collect();
                if offs.len() == 1 {
                    Offset::Const(offs[0])
                } else {
                    self.diags.error(
                        ErrorCode::TPortOffset,
                        format!(
                            "port `{}` has {} possible offsets; specify one with `@`",
                            pdef_clone.name,
                            offs.len()
                        ),
                        port.span,
                    );
                    Offset::Const(offs.first().copied().unwrap_or(0))
                }
            }
        };
        Some(PortBinding { port: pid, offset })
    }

    fn resolve_mask(&mut self, attrs: &[ast::RegAttr], size: u32, rspan: Span) -> Vec<MaskBit> {
        let mut mask: Option<&ast::BitMask> = None;
        for a in attrs {
            if let ast::RegAttr::Mask(m) = a {
                if mask.is_some() {
                    self.diags.error(
                        ErrorCode::DDuplicateName,
                        "register has more than one mask",
                        m.span,
                    );
                }
                mask = Some(m);
            }
        }
        match mask {
            Some(m) => {
                if m.width() != size {
                    self.diags.error(
                        ErrorCode::TMaskWidth,
                        format!("mask has {} bits but the register has {size}", m.width()),
                        m.span,
                    );
                }
                // Store LSB-first; pad/truncate defensively on width error.
                let mut bits: Vec<MaskBit> = m.bits.iter().rev().copied().collect();
                bits.resize(size as usize, MaskBit::Irrelevant);
                bits
            }
            None => {
                let _ = rspan;
                vec![MaskBit::Relevant; size as usize]
            }
        }
    }

    // ---- phase 5: variables ----

    fn resolve_variables(&mut self) {
        // Collect structure declarations first so fields know their parent.
        let struct_decls = std::mem::take(&mut self.struct_decls);
        for s in &struct_decls {
            if !self.declare(&s.name, "structure") {
                continue;
            }
            let sid = StructId(self.structures.len() as u32);
            self.structures.push(StructDef {
                name: s.name.name.clone(),
                fields: Vec::new(),
                serialized: None,
                span: s.span,
            });
            for f in &s.fields {
                self.var_decls.push((f, Some(sid)));
            }
        }
        self.struct_decls = struct_decls;

        let var_decls = std::mem::take(&mut self.var_decls);
        for (v, parent) in &var_decls {
            if !self.declare(&v.name, "variable") {
                continue;
            }
            if let Some(def) = self.resolve_variable(v, *parent) {
                let vid = VarId(self.variables.len() as u32);
                if let Some(sid) = parent {
                    self.structures[sid.0 as usize].fields.push(vid);
                }
                self.variables.push(def);
            }
        }
        self.var_decls = var_decls;
    }

    fn resolve_variable(
        &mut self,
        v: &ast::VariableDecl,
        parent: Option<StructId>,
    ) -> Option<VarDef> {
        let params = self.resolve_family_params(&v.params);
        let bits = match &v.bits {
            Some(be) => Some(self.resolve_bit_expr(be, &params)?),
            None => {
                if !v.private {
                    self.diags.error(
                        ErrorCode::TMissingType,
                        format!(
                            "variable `{}` has no register mapping; only private variables may be unmapped memory cells",
                            v.name.name
                        ),
                        v.span,
                    );
                }
                None
            }
        };
        let width = bits.as_ref().map(|chunks: &Vec<BitChunk>| {
            chunks.iter().map(super::model::BitChunk::width).sum::<u32>()
        });
        let ty = match &v.ty {
            Some(t) => self.resolve_type(t, width, None)?,
            None => {
                self.diags.error(
                    ErrorCode::TMissingType,
                    format!("variable `{}` has no type", v.name.name),
                    v.span,
                );
                TypeSem::UInt(width.unwrap_or(1))
            }
        };
        if let Some(w) = width {
            let tw = ty.width();
            let exact = matches!(
                ty,
                TypeSem::UInt(_) | TypeSem::SInt(_) | TypeSem::Bool | TypeSem::Enum(_)
            );
            if exact && tw != w {
                self.diags.error(
                    ErrorCode::TWidthMismatch,
                    format!(
                        "variable `{}` selects {w} register bit(s) but its type is {tw} bit(s) wide",
                        v.name.name
                    ),
                    v.span,
                );
            }
        }
        // Behaviour attributes.
        let mut behavior = Behavior::default();
        let mut neutral_ast: Option<&ast::TriggerException> = None;
        let set_actions: Vec<Action> = Vec::new();
        for attr in &v.attrs {
            match attr {
                ast::VarAttr::Volatile(_) => behavior.volatile = true,
                ast::VarAttr::Block(_) => behavior.block = true,
                ast::VarAttr::Trigger { mode, exception, .. } => {
                    match mode {
                        Some(ast::Mode::Read) => behavior.read_trigger = true,
                        Some(ast::Mode::Write) => behavior.write_trigger = true,
                        None => {
                            behavior.read_trigger = true;
                            behavior.write_trigger = true;
                        }
                    }
                    if let Some(e) = exception {
                        neutral_ast = Some(e);
                    }
                }
                ast::VarAttr::Set(b) => {
                    // Defer: action targets may be declared later. Store
                    // the AST pointer index via a placeholder resolved in
                    // resolve_serializations. To keep things simpler we
                    // resolve immediately against what's known plus the
                    // not-yet-resolved variables; instead, stash for the
                    // late pass.
                    let _ = b;
                }
            }
        }
        let neutral = neutral_ast.and_then(|e| self.resolve_neutral(e, &ty));
        // `set` blocks and serialization plans are resolved in the late
        // pass (resolve_serializations), after all variables exist.
        let _ = &set_actions;
        Some(VarDef {
            name: v.name.name.clone(),
            private: v.private,
            params,
            bits,
            ty,
            behavior,
            neutral,
            set: Vec::new(),
            serialized: None,
            parent,
            span: v.span,
        })
    }

    fn resolve_neutral(&mut self, e: &ast::TriggerException, ty: &TypeSem) -> Option<Neutral> {
        match e {
            ast::TriggerException::Except(sym) => match ty {
                TypeSem::Enum(en) => match en.value_of(&sym.name) {
                    Some(v) => Some(Neutral::Except(v)),
                    None => {
                        self.diags.error(
                            ErrorCode::TTriggerValue,
                            format!(
                                "`{}` is not a value of this variable's enumerated type",
                                sym.name
                            ),
                            sym.span,
                        );
                        None
                    }
                },
                _ => {
                    self.diags.error(
                        ErrorCode::TTriggerValue,
                        format!(
                            "`except {}` requires the variable to have an enumerated type",
                            sym.name
                        ),
                        sym.span,
                    );
                    None
                }
            },
            ast::TriggerException::For(cv) => {
                let raw = self.const_value_bits(cv, ty)?;
                Some(Neutral::For(raw))
            }
        }
    }

    fn const_value_bits(&mut self, cv: &ast::ConstValue, ty: &TypeSem) -> Option<u64> {
        let v = match cv {
            ast::ConstValue::Int(v, _) => *v,
            ast::ConstValue::Bool(b, _) => *b as u64,
            ast::ConstValue::Bits(b, span) => match u64::from_str_radix(b, 2) {
                Ok(v) => v,
                Err(_) => {
                    self.diags.error(
                        ErrorCode::TTriggerValue,
                        format!("`'{b}'` is not a constant bit pattern"),
                        *span,
                    );
                    return None;
                }
            },
            ast::ConstValue::Sym(sym) => match ty {
                TypeSem::Enum(en) => match en.value_of(&sym.name) {
                    Some(v) => v,
                    None => {
                        self.diags.error(
                            ErrorCode::TUndefined,
                            format!(
                                "`{}` is not a value of the expected enumerated type",
                                sym.name
                            ),
                            sym.span,
                        );
                        return None;
                    }
                },
                _ => {
                    self.diags.error(
                        ErrorCode::TUndefined,
                        format!("symbol `{}` used where a constant was expected", sym.name),
                        sym.span,
                    );
                    return None;
                }
            },
        };
        if !ty.valid_write(v) {
            self.diags.error(
                ErrorCode::TValueRange,
                format!("value {v} is not a member of the expected type"),
                cv.span(),
            );
        }
        Some(v)
    }

    fn resolve_bit_expr(
        &mut self,
        be: &ast::BitExpr,
        params: &[FamilyParam],
    ) -> Option<Vec<BitChunk>> {
        let mut chunks = Vec::new();
        for atom in &be.atoms {
            let Some((rid, reg)) = self.find_register(&atom.reg.name) else {
                let kind = self.names.get(&atom.reg.name).map(|(k, _)| *k);
                let code =
                    if kind.is_some() { ErrorCode::TWrongKind } else { ErrorCode::TUndefined };
                self.diags.error(
                    code,
                    format!("`{}` is not a register", atom.reg.name),
                    atom.reg.span,
                );
                return None;
            };
            let reg = reg.clone();
            // Family arguments.
            let mut args = Vec::new();
            if atom.args.len() != reg.params.len() {
                self.diags.error(
                    ErrorCode::TParamMismatch,
                    format!(
                        "register `{}` takes {} argument(s), {} supplied",
                        reg.name,
                        reg.params.len(),
                        atom.args.len()
                    ),
                    atom.span,
                );
                return None;
            }
            for (a, fp) in atom.args.iter().zip(&reg.params) {
                match a {
                    ast::Expr::Int(v, vspan) => {
                        if !fp.contains(*v) {
                            self.diags.error(
                                ErrorCode::TParamMismatch,
                                format!(
                                    "argument {v} is outside parameter `{}`'s value set",
                                    fp.name
                                ),
                                *vspan,
                            );
                        }
                        args.push(ChunkArg::Const(*v));
                    }
                    ast::Expr::Sym(s) => match params.iter().position(|vp| vp.name == s.name) {
                        Some(i) => {
                            // The variable parameter's values must all be
                            // legal for the register parameter.
                            for val in params[i].iter() {
                                if !fp.contains(val) {
                                    self.diags.error(
                                        ErrorCode::TParamMismatch,
                                        format!(
                                            "variable parameter `{}` can be {val}, outside register parameter `{}`'s set",
                                            s.name, fp.name
                                        ),
                                        s.span,
                                    );
                                    break;
                                }
                            }
                            args.push(ChunkArg::Param(i));
                        }
                        None => {
                            self.diags.error(
                                ErrorCode::TUndefined,
                                format!("`{}` is not a parameter of this variable", s.name),
                                s.span,
                            );
                            args.push(ChunkArg::Const(0));
                        }
                    },
                }
            }
            // Bit ranges.
            let ranges: Vec<(u32, u32)> = if atom.ranges.is_empty() {
                vec![(reg.size - 1, 0)]
            } else {
                atom.ranges.iter().map(|r| (r.hi, r.lo)).collect()
            };
            for &(hi, lo) in &ranges {
                if hi >= reg.size {
                    self.diags.error(
                        ErrorCode::TBitOutOfRange,
                        format!(
                            "bit {hi} is outside register `{}` (size {} bits)",
                            reg.name, reg.size
                        ),
                        atom.span,
                    );
                }
                for b in lo..=hi.min(reg.size.saturating_sub(1)) {
                    if reg.mask[b as usize] != MaskBit::Relevant {
                        self.diags.error(
                            ErrorCode::TBitOutOfRange,
                            format!(
                                "bit {b} of register `{}` is not relevant (mask `'{}'`)",
                                reg.name,
                                reg.mask.iter().rev().map(|m| m.to_char()).collect::<String>()
                            ),
                            atom.span,
                        );
                    }
                }
            }
            chunks.push(BitChunk { reg: rid, args, ranges });
        }
        Some(chunks)
    }

    // ---- phase 6: late resolution (actions, serialization) ----

    fn resolve_register_actions(&mut self) {
        let decls = self.reg_decls.clone();
        for r in decls {
            let Some((rid, _)) = self.find_register(&r.name.name) else { continue };
            // For instances, substitute family parameters by constants and
            // inherit the family's actions.
            let (inherited, subst, own_params): (
                Vec<(ActionKind, ast::ActionBlock)>,
                Vec<u64>,
                Vec<FamilyParam>,
            ) = match &r.spec {
                ast::RegSpec::Instance { family, args } => {
                    let fam_decl =
                        self.reg_decls.iter().find(|d| d.name.name == family.name).copied();
                    let consts: Vec<u64> = args
                        .iter()
                        .map(|a| match a {
                            ast::Expr::Int(v, _) => *v,
                            ast::Expr::Sym(_) => 0,
                        })
                        .collect();
                    let inherited =
                        fam_decl.map(|d| collect_action_blocks(&d.attrs)).unwrap_or_default();
                    let fam_params =
                        fam_decl.map(|d| self.resolve_family_params(&d.params)).unwrap_or_default();
                    (inherited, consts, fam_params)
                }
                _ => {
                    let params = self.resolve_family_params(&r.params);
                    (Vec::new(), Vec::new(), params)
                }
            };
            let mut pre = Vec::new();
            let mut post = Vec::new();
            let mut set = Vec::new();
            for (kind, block) in
                inherited.iter().map(|(k, b)| (*k, b)).chain(collect_action_blocks_ref(&r.attrs))
            {
                for stmt in &block.stmts {
                    if let Some(a) = self.resolve_action(stmt, &own_params, &subst) {
                        match kind {
                            ActionKind::Pre => pre.push(a),
                            ActionKind::Post => post.push(a),
                            ActionKind::Set => set.push(a),
                        }
                    }
                }
            }
            let def = &mut self.registers[rid.0 as usize];
            def.pre = pre;
            def.post = post;
            def.set = set;
        }
        // Variable `set` blocks.
        let var_decls = self.var_decls.clone();
        for (v, _) in var_decls {
            let Some((vid, vdef)) = self.find_variable(&v.name.name) else { continue };
            let params = vdef.params.clone();
            let mut actions = Vec::new();
            for attr in &v.attrs {
                if let ast::VarAttr::Set(b) = attr {
                    for stmt in &b.stmts {
                        if let Some(a) = self.resolve_action(stmt, &params, &[]) {
                            actions.push(a);
                        }
                    }
                }
            }
            self.variables[vid.0 as usize].set = actions;
        }
    }

    /// Resolves one action statement. `params` are the enclosing family
    /// parameters; `subst` maps family-parameter indices to constants
    /// when resolving an inherited (instance) action.
    fn resolve_action(
        &mut self,
        stmt: &ast::ActionStmt,
        params: &[FamilyParam],
        subst: &[u64],
    ) -> Option<Action> {
        // Target: variable or structure.
        if let Some((vid, vdef)) = self.find_variable(&stmt.target.name) {
            let ty = vdef.ty.clone();
            let value = self.resolve_action_value(&stmt.value, Some(&ty), params, subst)?;
            return Some(Action { target: ActionTarget::Var(vid), value, span: stmt.span });
        }
        if let Some((sid, _)) = self.find_structure(&stmt.target.name) {
            let value = match &stmt.value {
                ast::ActionValue::Struct(fields, _span) => {
                    let mut out = Vec::new();
                    for (fname, fval) in fields {
                        match self.find_variable(&fname.name) {
                            Some((fvid, fdef)) => {
                                let wrong_parent = fdef.parent != Some(sid);
                                let fty = fdef.ty.clone();
                                if wrong_parent {
                                    self.diags.error(
                                        ErrorCode::TStructureMisuse,
                                        format!(
                                            "`{}` is not a field of structure `{}`",
                                            fname.name, stmt.target.name
                                        ),
                                        fname.span,
                                    );
                                }
                                let v =
                                    self.resolve_action_value(fval, Some(&fty), params, subst)?;
                                out.push((fvid, v));
                            }
                            None => {
                                self.diags.error(
                                    ErrorCode::TUndefined,
                                    format!("undefined structure field `{}`", fname.name),
                                    fname.span,
                                );
                                return None;
                            }
                        }
                    }
                    ActionValue::Struct(out)
                }
                other => {
                    self.diags.error(
                        ErrorCode::TStructureMisuse,
                        "assigning to a structure requires a `{field => value; ...}` value",
                        other.span(),
                    );
                    return None;
                }
            };
            return Some(Action { target: ActionTarget::Struct(sid), value, span: stmt.span });
        }
        self.diags.error(
            ErrorCode::TUndefined,
            format!("`{}` is not a variable or structure", stmt.target.name),
            stmt.target.span,
        );
        None
    }

    fn resolve_action_value(
        &mut self,
        v: &ast::ActionValue,
        target_ty: Option<&TypeSem>,
        params: &[FamilyParam],
        subst: &[u64],
    ) -> Option<ActionValue> {
        match v {
            ast::ActionValue::Int(n, span) => {
                if let Some(ty) = target_ty {
                    if !ty.valid_write(*n) {
                        self.diags.error(
                            ErrorCode::TActionValue,
                            format!("value {n} is not a member of the target's type"),
                            *span,
                        );
                    }
                }
                Some(ActionValue::Const(*n))
            }
            ast::ActionValue::Any(_) => Some(ActionValue::Any),
            ast::ActionValue::Bool(b, span) => {
                if let Some(ty) = target_ty {
                    if !matches!(ty, TypeSem::Bool) {
                        self.diags.error(
                            ErrorCode::TActionValue,
                            "boolean value assigned to a non-boolean target",
                            *span,
                        );
                    }
                }
                Some(ActionValue::Const(*b as u64))
            }
            ast::ActionValue::Sym(sym) => {
                // Priority: family parameter, enum symbol of target type,
                // variable reference.
                if let Some(i) = params.iter().position(|p| p.name == sym.name) {
                    if let Some(&c) = subst.get(i) {
                        return Some(ActionValue::Const(c));
                    }
                    return Some(ActionValue::Param(i));
                }
                if let Some(TypeSem::Enum(en)) = target_ty {
                    if let Some(val) = en.value_of(&sym.name) {
                        return Some(ActionValue::Const(val));
                    }
                }
                if let Some((vid, _)) = self.find_variable(&sym.name) {
                    return Some(ActionValue::Var(vid));
                }
                self.diags.error(
                    ErrorCode::TUndefined,
                    format!("undefined value `{}` in action", sym.name),
                    sym.span,
                );
                None
            }
            ast::ActionValue::Struct(_, span) => {
                self.diags.error(
                    ErrorCode::TStructureMisuse,
                    "structure value assigned to a non-structure target",
                    *span,
                );
                None
            }
        }
    }

    fn resolve_serializations(&mut self) {
        // Variable-level serialization plans.
        let var_decls = self.var_decls.clone();
        for (v, _) in var_decls {
            let Some(ser) = &v.serialized else { continue };
            let Some((vid, vdef)) = self.find_variable(&v.name.name) else { continue };
            let regs: Vec<RegId> = vdef
                .bits
                .as_ref()
                .map(|chunks| chunks.iter().map(|c| c.reg).collect())
                .unwrap_or_default();
            let plan = self.resolve_ser_block(ser, &regs, None);
            self.variables[vid.0 as usize].serialized = plan;
        }
        // Structure-level serialization plans.
        let struct_decls = self.struct_decls.clone();
        for s in struct_decls {
            let Some(ser) = &s.serialized else { continue };
            let Some((sid, sdef)) = self.find_structure(&s.name.name) else { continue };
            let mut regs: Vec<RegId> = Vec::new();
            for &fid in &sdef.fields {
                if let Some(chunks) = &self.variables[fid.0 as usize].bits {
                    for c in chunks {
                        if !regs.contains(&c.reg) {
                            regs.push(c.reg);
                        }
                    }
                }
            }
            let fields = sdef.fields.clone();
            let plan = self.resolve_ser_block(ser, &regs, Some(&fields));
            self.structures[sid.0 as usize].serialized = plan;
        }
    }

    /// `allowed` is the set of registers backing the serialized entity;
    /// `members` restricts condition variables for structures.
    fn resolve_ser_block(
        &mut self,
        block: &ast::SerBlock,
        allowed: &[RegId],
        members: Option<&[VarId]>,
    ) -> Option<SerPlan> {
        let steps = self.resolve_ser_items(&block.items, allowed, members)?;
        Some(SerPlan { steps })
    }

    fn resolve_ser_items(
        &mut self,
        items: &[ast::SerItem],
        allowed: &[RegId],
        members: Option<&[VarId]>,
    ) -> Option<Vec<SerStep>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                ast::SerItem::Reg(name) => {
                    let Some((rid, _)) = self.find_register(&name.name) else {
                        self.diags.error(
                            ErrorCode::TSerialization,
                            format!("`{}` is not a register", name.name),
                            name.span,
                        );
                        return None;
                    };
                    if !allowed.contains(&rid) {
                        self.diags.error(
                            ErrorCode::TSerialization,
                            format!("register `{}` does not back the serialized entity", name.name),
                            name.span,
                        );
                    }
                    out.push(SerStep::Reg(rid));
                }
                ast::SerItem::If { cond, then, els, .. } => {
                    let cond = self.resolve_cond(cond, members)?;
                    let then =
                        self.resolve_ser_items(std::slice::from_ref(then), allowed, members)?;
                    let els = match els {
                        Some(e) => {
                            self.resolve_ser_items(std::slice::from_ref(e), allowed, members)?
                        }
                        None => Vec::new(),
                    };
                    out.push(SerStep::If { cond, then, els });
                }
                ast::SerItem::Block(items, _) => {
                    let inner = self.resolve_ser_items(items, allowed, members)?;
                    out.extend(inner);
                }
            }
        }
        Some(out)
    }

    fn resolve_cond(&mut self, cond: &ast::Cond, members: Option<&[VarId]>) -> Option<CondSem> {
        match cond {
            ast::Cond::Cmp { lhs, op, rhs, .. } => {
                let Some((vid, vdef)) = self.find_variable(&lhs.name) else {
                    self.diags.error(
                        ErrorCode::TSerialization,
                        format!("`{}` is not a variable", lhs.name),
                        lhs.span,
                    );
                    return None;
                };
                let ty = vdef.ty.clone();
                if let Some(m) = members {
                    if !m.contains(&vid) {
                        self.diags.error(
                            ErrorCode::TSerialization,
                            format!(
                                "serialization conditions may only test structure members; `{}` is not one",
                                lhs.name
                            ),
                            lhs.span,
                        );
                    }
                }
                let value = self.const_value_bits(rhs, &ty)?;
                Some(CondSem::Cmp { var: vid, eq: matches!(op, ast::CmpOp::Eq), value })
            }
            ast::Cond::And(a, b) => {
                let a = self.resolve_cond(a, members)?;
                let b = self.resolve_cond(b, members)?;
                Some(CondSem::And(Box::new(a), Box::new(b)))
            }
            ast::Cond::Or(a, b) => {
                let a = self.resolve_cond(a, members)?;
                let b = self.resolve_cond(b, members)?;
                Some(CondSem::Or(Box::new(a), Box::new(b)))
            }
            ast::Cond::Not(a) => {
                let a = self.resolve_cond(a, members)?;
                Some(CondSem::Not(Box::new(a)))
            }
        }
    }

    // ---- lookups ----

    fn find_port(&self, name: &str) -> Option<(PortId, &PortDef)> {
        self.ports
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == name)
            .map(|(i, p)| (PortId(i as u32), p))
    }

    fn find_register(&self, name: &str) -> Option<(RegId, &RegDef)> {
        self.registers
            .iter()
            .enumerate()
            .find(|(_, r)| r.name == name)
            .map(|(i, r)| (RegId(i as u32), r))
    }

    fn find_variable(&self, name: &str) -> Option<(VarId, &VarDef)> {
        self.variables
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
            .map(|(i, v)| (VarId(i as u32), v))
    }

    fn find_structure(&self, name: &str) -> Option<(StructId, &StructDef)> {
        self.structures
            .iter()
            .enumerate()
            .find(|(_, s)| s.name == name)
            .map(|(i, s)| (StructId(i as u32), s))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ActionKind {
    Pre,
    Post,
    Set,
}

fn collect_action_blocks(attrs: &[ast::RegAttr]) -> Vec<(ActionKind, ast::ActionBlock)> {
    attrs
        .iter()
        .filter_map(|a| match a {
            ast::RegAttr::Pre(b) => Some((ActionKind::Pre, b.clone())),
            ast::RegAttr::Post(b) => Some((ActionKind::Post, b.clone())),
            ast::RegAttr::Set(b) => Some((ActionKind::Set, b.clone())),
            ast::RegAttr::Mask(_) => None,
        })
        .collect()
}

fn collect_action_blocks_ref(
    attrs: &[ast::RegAttr],
) -> impl Iterator<Item = (ActionKind, &ast::ActionBlock)> {
    attrs.iter().filter_map(|a| match a {
        ast::RegAttr::Pre(b) => Some((ActionKind::Pre, b)),
        ast::RegAttr::Post(b) => Some((ActionKind::Post, b)),
        ast::RegAttr::Set(b) => Some((ActionKind::Set, b)),
        ast::RegAttr::Mask(_) => None,
    })
}

/// Normalizes an AST integer set into sorted, merged inclusive ranges.
fn normalize_set(set: &ast::IntSet) -> Vec<(u64, u64)> {
    let mut ranges: Vec<(u64, u64)> = set
        .items
        .iter()
        .map(|it| match *it {
            ast::IntSetItem::Single(v) => (v, v),
            ast::IntSetItem::Range(lo, hi) => (lo, hi),
        })
        .collect();
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some((_, phi)) if lo <= phi.saturating_add(1) => *phi = (*phi).max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use devil_syntax::parse;

    fn resolve_src(src: &str) -> (CheckedDevice, DiagSink) {
        let (dev, mut diags) = parse(src);
        let dev = dev.expect("parse produced no device");
        assert!(!diags.has_errors(), "parse errors: {:#?}", diags.all());
        let model = resolve(&dev, &[], &mut diags);
        (model, diags)
    }

    fn resolve_ok(src: &str) -> CheckedDevice {
        let (model, diags) = resolve_src(src);
        assert!(!diags.has_errors(), "resolve errors: {:#?}", diags.all());
        model
    }

    const MINI: &str = r#"
device mini (base : bit[8] port @ {0..1}) {
  register a = base @ 0 : bit[8];
  register b = write base @ 1, mask '1**00000' : bit[8];
  variable whole = a : int(8);
  variable two = b[6..5] : int(2);
}
"#;

    #[test]
    fn resolves_mini_device() {
        let m = resolve_ok(MINI);
        assert_eq!(m.ports.len(), 1);
        assert_eq!(m.registers.len(), 2);
        assert_eq!(m.variables.len(), 2);
        let (_, a) = m.register("a").unwrap();
        assert!(a.readable() && a.writable());
        let (_, b) = m.register("b").unwrap();
        assert!(!b.readable() && b.writable());
        assert_eq!(b.relevant_bits(), 0b0110_0000);
        assert_eq!(b.forced_masks(), (0b1000_0000, 0b1110_0000));
        let (_, two) = m.variable("two").unwrap();
        assert_eq!(two.width(), 2);
        assert_eq!(two.bits.as_ref().unwrap()[0].ranges, vec![(6, 5)]);
    }

    #[test]
    fn whole_register_reference_uses_full_width() {
        let m = resolve_ok(MINI);
        let (_, whole) = m.variable("whole").unwrap();
        assert_eq!(whole.width(), 8);
        assert_eq!(whole.bits.as_ref().unwrap()[0].ranges, vec![(7, 0)]);
    }

    #[test]
    fn error_undefined_port() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = nothere @ 0 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TUndefined));
    }

    #[test]
    fn error_port_offset_out_of_range() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register r = base @ 2 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TPortOffset));
    }

    #[test]
    fn error_register_port_width_mismatch() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[16] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TWidthMismatch));
    }

    #[test]
    fn error_mask_width() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0, mask '****' : bit[8];
                 variable v = r[3..0] : int(4);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TMaskWidth));
    }

    #[test]
    fn error_variable_type_width_mismatch() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r[3..0] : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TWidthMismatch));
    }

    #[test]
    fn error_bit_out_of_range() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r[8] : bool;
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TBitOutOfRange));
    }

    #[test]
    fn error_variable_on_forced_mask_bit() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = write base @ 0, mask '0000000*' : bit[8];
                 variable v = r[1] : bool;
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TBitOutOfRange));
    }

    #[test]
    fn error_duplicate_names() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register r = base @ 0 : bit[8];
                 register r = base @ 1 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::DDuplicateName));
    }

    #[test]
    fn error_duplicate_enum_symbol_and_pattern() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r[1..0] : { A => '01', A => '10' };
                 variable w = r[3..2] : { X => '01', Y => '01' };
                 variable rest = r[7..4] : int(4);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::DDuplicateEnumSym));
        assert!(diags.has_code(ErrorCode::DDuplicateEnumPattern));
    }

    #[test]
    fn pre_action_resolves_forward_variable() {
        // `x_low` references `index`, declared earlier; also test that a
        // register's pre-action may reference a variable declared later.
        let m = resolve_ok(
            r#"device d (base : bit[8] port @ {0..2}) {
                 register x_low = read base @ 0, pre {index = 0} : bit[8];
                 register index_reg = write base @ 2, mask '1**00000' : bit[8];
                 private variable index = index_reg[6..5] : int(2);
                 variable xv = x_low : int(8);
                 register unused_filler = base @ 1 : bit[8];
                 variable filler = unused_filler : int(8);
               }"#,
        );
        let (_, x_low) = m.register("x_low").unwrap();
        assert_eq!(x_low.pre.len(), 1);
        let (iid, _) = m.variable("index").unwrap();
        assert!(matches!(x_low.pre[0].target, ActionTarget::Var(v) if v == iid));
        assert!(matches!(x_low.pre[0].value, ActionValue::Const(0)));
    }

    #[test]
    fn family_instance_inlines_ports_and_actions() {
        let m = resolve_ok(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register control = base @ 0 : bit[8];
                 variable IA = control : int{0..31};
                 register I(i : int{0..31}) = base @ 1, pre {IA = i} : bit[8];
                 register I23 = I(23), mask '*******0';
                 variable ACF = I23[7..1] : int(7);
                 variable ID(i : int{0..31}) = I(i), volatile : int(8);
               }"#,
        );
        let (_, i23) = m.register("I23").unwrap();
        assert_eq!(i23.size, 8);
        assert!(i23.params.is_empty());
        // Family parameter `i` substituted by 23 in the inherited pre.
        assert_eq!(i23.pre.len(), 1);
        assert!(matches!(i23.pre[0].value, ActionValue::Const(23)));
        // Mask overridden.
        assert_eq!(i23.relevant_bits(), 0b1111_1110);
        // Parameterized variable keeps the parameter symbolic.
        let (_, id) = m.variable("ID").unwrap();
        assert_eq!(id.params.len(), 1);
        let chunk = &id.bits.as_ref().unwrap()[0];
        assert_eq!(chunk.args, vec![ChunkArg::Param(0)]);
        // The family register keeps its own symbolic pre-action.
        let (_, fam) = m.register("I").unwrap();
        assert!(matches!(fam.pre[0].value, ActionValue::Param(0)));
    }

    #[test]
    fn error_family_arg_out_of_set() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register control = base @ 0 : bit[8];
                 variable IA = control : int{0..31};
                 register I(i : int{0..31}) = base @ 1, pre {IA = i} : bit[8];
                 register I40 = I(40);
                 variable v = I40 : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TParamMismatch));
    }

    #[test]
    fn error_family_wrong_arity() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register control = base @ 0 : bit[8];
                 variable IA = control : int{0..31};
                 register I(i : int{0..31}) = base @ 1, pre {IA = i} : bit[8];
                 register bad = I(1, 2);
                 variable v = bad : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TParamMismatch));
    }

    #[test]
    fn structure_fields_get_parent_and_order() {
        let m = resolve_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 structure s = {
                   variable lo = r[3..0], volatile : int(4);
                   variable hi = r[7..4], volatile : int(4);
                 };
               }"#,
        );
        let (sid, sdef) = m.structure("s").unwrap();
        assert_eq!(sdef.fields.len(), 2);
        let (lid, lo) = m.variable("lo").unwrap();
        assert_eq!(lo.parent, Some(sid));
        assert_eq!(sdef.fields[0], lid);
    }

    #[test]
    fn serialized_variable_plan() {
        let m = resolve_ok(
            r#"device d (data : bit[8] port @ {0..0}, ctl : bit[8] port @ {1..1}) {
                 register ff = write ctl @ 1, mask '0000000*' : bit[8];
                 private variable flip_flop = ff[0] : bool;
                 register cnt_low = data @ 0, pre {flip_flop = *} : bit[8];
                 register cnt_high = data @ 0 : bit[8];
                 variable x = cnt_high # cnt_low : int(16) serialized as {cnt_low; cnt_high;};
               }"#,
        );
        let (_, x) = m.variable("x").unwrap();
        let plan = x.serialized.as_ref().unwrap();
        assert_eq!(plan.steps.len(), 2);
        let (lo_id, _) = m.register("cnt_low").unwrap();
        assert!(matches!(plan.steps[0], SerStep::Reg(r) if r == lo_id));
        // The pre-action strobe resolved to Any.
        let (_, cnt_low) = m.register("cnt_low").unwrap();
        assert!(matches!(cnt_low.pre[0].value, ActionValue::Any));
    }

    #[test]
    fn error_serialized_register_not_backing() {
        let (_, diags) = resolve_src(
            r#"device d (data : bit[8] port @ {0..1}) {
                 register a = data @ 0 : bit[8];
                 register b = data @ 1 : bit[8];
                 variable x = a : int(8) serialized as {b;};
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TSerialization));
    }

    #[test]
    fn conditional_decls_flatten_by_binding() {
        let src = r#"device d (base : bit[8] port @ {0..0}, mode : int(1)) {
                 register r = base @ 0 : bit[8];
                 if (mode == 1) {
                   variable a = r : int(8);
                 } else {
                   variable b = r : int(8);
                 }
               }"#;
        let (dev, mut diags) = parse(src);
        let dev = dev.unwrap();
        let m1 = resolve(&dev, &[("mode", 1)], &mut diags);
        assert!(!diags.has_errors(), "{:#?}", diags.all());
        assert!(m1.variable("a").is_some());
        assert!(m1.variable("b").is_none());
        let mut diags2 = DiagSink::new();
        let m0 = resolve(&dev, &[("mode", 0)], &mut diags2);
        assert!(m0.variable("b").is_some());
        assert!(m0.variable("a").is_none());
    }

    #[test]
    fn error_unbound_int_param() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}, mode : int(1)) {
                 register r = base @ 0 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TCondGuard));
    }

    #[test]
    fn error_unknown_binding() {
        let (dev, mut diags) = parse(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        let _ = resolve(&dev.unwrap(), &[("ghost", 1)], &mut diags);
        assert!(diags.has_code(ErrorCode::TParamMismatch));
    }

    #[test]
    fn trigger_neutral_resolution() {
        let m = resolve_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register cmd = base @ 0 : bit[8];
                 variable st = cmd[1..0], write trigger except NEUTRAL
                   : { NEUTRAL => '00', START <=> '01', STOP <=> '10' };
                 variable rest = cmd[7..2] : int(6);
               }"#,
        );
        let (_, st) = m.variable("st").unwrap();
        assert_eq!(st.neutral, Some(Neutral::Except(0)));
        assert!(st.behavior.write_trigger);
        assert!(!st.behavior.read_trigger);
    }

    #[test]
    fn error_trigger_neutral_not_in_type() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register cmd = base @ 0 : bit[8];
                 variable st = cmd[1..0], write trigger except MISSING
                   : { NEUTRAL => '00', START <=> '01' };
                 variable rest = cmd[7..2] : int(6);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TTriggerValue));
    }

    #[test]
    fn trigger_for_bool() {
        let m = resolve_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable XRAE = r[0], write trigger for true : bool;
                 variable rest = r[7..1] : int(7);
               }"#,
        );
        let (_, x) = m.variable("XRAE").unwrap();
        assert_eq!(x.neutral, Some(Neutral::For(1)));
    }

    #[test]
    fn unmapped_private_memory_variable() {
        let m = resolve_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 private variable xm : bool;
                 register control = base @ 0, set {xm = false} : bit[8];
                 variable IA = control : int{0..31};
               }"#,
        );
        let (xid, xm) = m.variable("xm").unwrap();
        assert!(xm.is_memory());
        assert_eq!(xm.width(), 1);
        let (_, control) = m.register("control").unwrap();
        assert!(matches!(control.set[0].target, ActionTarget::Var(v) if v == xid));
    }

    #[test]
    fn error_public_unmapped_variable() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 variable ghost : bool;
                 register r = base @ 0 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TMissingType));
    }

    #[test]
    fn struct_valued_pre_action() {
        let m = resolve_ok(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register idx = write base @ 0, mask '000***00' : bit[8];
                 structure XS = {
                   variable XA = idx[4..2] : int(3);
                 };
                 register data = base @ 1, pre {XS = {XA => 5}} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        let (_, data) = m.register("data").unwrap();
        let (sid, _) = m.structure("XS").unwrap();
        assert!(matches!(data.pre[0].target, ActionTarget::Struct(s) if s == sid));
        match &data.pre[0].value {
            ActionValue::Struct(fields) => {
                assert_eq!(fields.len(), 1);
                assert!(matches!(fields[0].1, ActionValue::Const(5)));
            }
            other => panic!("wrong value: {other:?}"),
        }
    }

    #[test]
    fn error_action_value_out_of_type() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..1}) {
                 register idx = write base @ 0, mask '000000**' : bit[8];
                 private variable sel = idx[1..0] : int(2);
                 register data = base @ 1, pre {sel = 9} : bit[8];
                 variable payload = data, volatile : int(8);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TActionValue));
    }

    #[test]
    fn normalize_set_merges_adjacent() {
        use devil_syntax::ast::{IntSet, IntSetItem};
        let set = IntSet {
            items: vec![
                IntSetItem::Range(4, 6),
                IntSetItem::Single(7),
                IntSetItem::Range(0, 2),
                IntSetItem::Single(25),
            ],
            span: Span::DUMMY,
        };
        assert_eq!(normalize_set(&set), vec![(0, 2), (4, 7), (25, 25)]);
    }

    #[test]
    fn int_set_type_width_comes_from_variable() {
        let m = resolve_ok(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register control = base @ 0 : bit[8];
                 variable IA = control : int{0..31};
               }"#,
        );
        let (_, ia) = m.variable("IA").unwrap();
        assert_eq!(ia.ty.width(), 8, "IntSet adopts the variable's 8-bit width");
        assert!(ia.ty.valid_write(31));
        assert!(!ia.ty.valid_write(32));
    }

    #[test]
    fn error_int_set_too_wide_for_variable() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 register r = base @ 0 : bit[8];
                 variable v = r[1..0] : int{0..31};
                 variable rest = r[7..2] : int(6);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TWidthMismatch));
    }

    #[test]
    fn dual_port_register_directions() {
        let m = resolve_ok(
            r#"device d (a : bit[8] port @ {0..1}) {
                 register r = read a @ 0 write a @ 1 : bit[8];
                 variable v = r : int(8);
               }"#,
        );
        let (_, r) = m.register("r").unwrap();
        assert!(r.readable() && r.writable());
        assert_ne!(r.read, r.write);
    }

    #[test]
    fn named_type_resolution_and_width_check() {
        let (_, diags) = resolve_src(
            r#"device d (base : bit[8] port @ {0..0}) {
                 type wide = { A <=> '0011', B <=> '1100' };
                 register r = base @ 0 : bit[8];
                 variable v = r[0] : wide;
                 variable rest = r[7..1] : int(7);
               }"#,
        );
        assert!(diags.has_code(ErrorCode::TEnumPatternWidth));
    }
}
