//! Every shipped `.dil` specification must pass the full checker —
//! parse, resolve, and all four verification groups — with zero errors.

use std::fs;
use std::path::PathBuf;

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

#[test]
fn all_shipped_specs_check_clean() {
    let mut checked = 0;
    for entry in fs::read_dir(specs_dir()).expect("specs directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("dil") {
            continue;
        }
        let src = fs::read_to_string(&path).unwrap();
        let (model, diags) = devil_sema::check_source_with_warnings(&src, &[]);
        assert!(model.is_some(), "{} failed to check:\n{}", path.display(), {
            let sm = devil_syntax::SourceMap::new(path.display().to_string(), src.clone());
            diags.render_all(&sm)
        });
        checked += 1;
    }
    assert_eq!(checked, 8, "expected the 8 specs of the paper's device suite");
}

#[test]
fn busmouse_spec_matches_figure_1_inventory() {
    let src = fs::read_to_string(specs_dir().join("busmouse.dil")).unwrap();
    let m = devil_sema::check_source(&src, &[]).unwrap();
    assert_eq!(m.name, "logitech_busmouse");
    assert_eq!(m.registers.len(), 8);
    assert_eq!(m.structures.len(), 1);
    let (_, st) = m.structure("mouse_state").unwrap();
    assert_eq!(st.fields.len(), 3);
    let (_, dx) = m.variable("dx").unwrap();
    assert!(matches!(dx.ty, devil_sema::model::TypeSem::SInt(8)));
    let (_, index) = m.variable("index").unwrap();
    assert!(index.private);
}

#[test]
fn cs4236b_spec_models_the_automaton() {
    let src = fs::read_to_string(specs_dir().join("cs4236b.dil")).unwrap();
    let m = devil_sema::check_source(&src, &[]).unwrap();
    let (_, xm) = m.variable("xm").unwrap();
    assert!(xm.is_memory(), "xm is an unmapped private memory cell");
    let (_, x) = m.register("X").unwrap();
    assert_eq!(x.params.len(), 1);
    assert!(x.params[0].contains(17));
    assert!(x.params[0].contains(25));
    assert!(!x.params[0].contains(18));
}

#[test]
fn pic8259_serialization_has_conditional_steps() {
    let src = fs::read_to_string(specs_dir().join("pic8259.dil")).unwrap();
    let m = devil_sema::check_source(&src, &[]).unwrap();
    let (_, init) = m.structure("init").unwrap();
    let plan = init.serialized.as_ref().unwrap();
    assert_eq!(plan.steps.len(), 5);
    let conditional =
        plan.steps.iter().filter(|s| matches!(s, devil_sema::model::SerStep::If { .. })).count();
    assert_eq!(conditional, 2, "icw3 and icw4 are conditional");
}
