//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the small slice of criterion's API the workspace benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain
//! warmup-then-sample loop around `std::time::Instant`; results are
//! printed as `name  time: [.. mean ..]` lines in criterion's style so
//! the numbers can be eyeballed and diffed.
//!
//! Swapping the real criterion back in is a one-line change in the
//! workspace manifest; no bench source needs to change.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How long to measure each benchmark for (after warmup).
const MEASURE_FOR: Duration = Duration::from_millis(200);
/// Warmup period before measuring.
const WARMUP_FOR: Duration = Duration::from_millis(50);

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// When true (``--test`` mode under `cargo test`), run each
    /// benchmark exactly once and skip measurement.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { c: self, group: name.to_string() }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.test_mode, id, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in sizes its sample
    /// by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, id);
        run_bench(self.c.test_mode, &full, f);
        self
    }

    /// Ends the group (formatting parity with real criterion).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` runs the
/// measured routine.
pub struct Bencher {
    /// Total iterations executed by the most recent `iter` call.
    iters: u64,
    /// Total wall-clock accumulated by the most recent `iter` call.
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Measures `routine` by running it repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // Warmup, and discover a batch size large enough that the clock
        // overhead disappears.
        let mut batch = 1u64;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if warm_start.elapsed() >= WARMUP_FOR && dt >= Duration::from_micros(50) {
                break;
            }
            if dt < Duration::from_micros(50) {
                batch = batch.saturating_mul(2);
            }
        }
        // Measure.
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE_FOR {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

fn run_bench<F>(test_mode: bool, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, test_mode };
    f(&mut b);
    if test_mode {
        println!("{id}: ok (test mode)");
        return;
    }
    let per_iter = if b.iters > 0 { b.elapsed.as_nanos() as f64 / b.iters as f64 } else { 0.0 };
    println!("{id:<40} time: [{} {} {}]", fmt_ns(per_iter), fmt_ns(per_iter), fmt_ns(per_iter));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{:.4} ns", ns)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, test_mode: true };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert_eq!(n, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn format_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(1.2e4).ends_with("µs"));
        assert!(fmt_ns(3.0e6).ends_with("ms"));
        assert!(fmt_ns(2.0e9).ends_with("s"));
    }
}
