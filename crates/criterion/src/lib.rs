//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the small slice of criterion's API the workspace benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain
//! warmup-then-sample loop around `std::time::Instant`; results are
//! printed as `name  time: [.. mean ..]` lines in criterion's style so
//! the numbers can be eyeballed and diffed.
//!
//! Swapping the real criterion back in is a one-line change in the
//! workspace manifest; no bench source needs to change.
//!
//! Two environment variables make runs machine-consumable:
//!
//! * `BENCH_JSON=<path>` — after all groups run, write every result as
//!   nested JSON (`{"group": {"bench": mean_ns}}`). The committed
//!   `BENCH_micro.json` snapshot is regenerated with
//!   `BENCH_JSON=BENCH_micro.json cargo bench --bench micro_stub`.
//! * `BENCH_MEASURE_MS=<ms>` — per-benchmark measurement budget
//!   (default 200 ms; CI's smoke step uses a small value).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How long to measure each benchmark for (after warmup), unless
/// `BENCH_MEASURE_MS` overrides it.
const MEASURE_FOR: Duration = Duration::from_millis(200);
/// Warmup period before measuring.
const WARMUP_FOR: Duration = Duration::from_millis(50);

/// Every `(full bench id, mean ns/iter)` measured by this process, in
/// run order — the source for [`write_json_results`].
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn measure_for() -> Duration {
    std::env::var("BENCH_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(MEASURE_FOR)
}

/// Writes the collected results as `group → bench → mean ns` JSON to
/// the path named by `BENCH_JSON`, if set. Called by
/// [`criterion_main!`] after every group has run.
pub fn write_json_results() {
    let Ok(path) = std::env::var("BENCH_JSON") else { return };
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    // Group by id prefix, preserving first-seen order and merging
    // non-adjacent results of one group so no key appears twice (a
    // duplicate JSON key would silently shadow the earlier benches).
    let mut groups: Vec<(&str, Vec<(&str, f64)>)> = Vec::new();
    for (id, ns) in results.iter() {
        let (group, bench) = id.split_once('/').unwrap_or(("", id.as_str()));
        match groups.iter_mut().find(|(g, _)| *g == group) {
            Some((_, benches)) => benches.push((bench, *ns)),
            None => groups.push((group, vec![(bench, *ns)])),
        }
    }
    let mut out = String::from("{\n");
    for (gi, (group, benches)) in groups.iter().enumerate() {
        out.push_str(&format!("  \"{group}\": {{\n"));
        for (bi, (bench, ns)) in benches.iter().enumerate() {
            let sep = if bi + 1 == benches.len() { "\n" } else { ",\n" };
            out.push_str(&format!("    \"{bench}\": {ns:.1}{sep}"));
        }
        out.push_str(if gi + 1 == groups.len() { "  }\n" } else { "  },\n" });
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: cannot write BENCH_JSON to {path}: {e}");
    }
}

/// Records an already-measured scalar under a `group/bench` id — for
/// benches whose metric is not time per iteration (ops/sec, latency
/// percentiles). The value lands in the same `BENCH_JSON` output as
/// timed results, under the id's group.
pub fn record_value(id: &str, value: f64) {
    println!("{id:<40} value: {value:.1}");
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push((id.to_string(), value));
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// When true (``--test`` mode under `cargo test`), run each
    /// benchmark exactly once and skip measurement.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { c: self, group: name.to_string() }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.test_mode, id, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in sizes its sample
    /// by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, id);
        run_bench(self.c.test_mode, &full, f);
        self
    }

    /// Ends the group (formatting parity with real criterion).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` runs the
/// measured routine.
pub struct Bencher {
    /// Total iterations executed by the most recent `iter` call.
    iters: u64,
    /// Total wall-clock accumulated by the most recent `iter` call.
    elapsed: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Measures `routine` by running it repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // Warmup, and discover a batch size large enough that the clock
        // overhead disappears.
        let mut batch = 1u64;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if warm_start.elapsed() >= WARMUP_FOR && dt >= Duration::from_micros(50) {
                break;
            }
            if dt < Duration::from_micros(50) {
                batch = batch.saturating_mul(2);
            }
        }
        // Measure.
        let budget = measure_for();
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < budget {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

fn run_bench<F>(test_mode: bool, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, test_mode };
    f(&mut b);
    if test_mode {
        println!("{id}: ok (test mode)");
        return;
    }
    let per_iter = if b.iters > 0 { b.elapsed.as_nanos() as f64 / b.iters as f64 } else { 0.0 };
    println!("{id:<40} time: [{} {} {}]", fmt_ns(per_iter), fmt_ns(per_iter), fmt_ns(per_iter));
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push((id.to_string(), per_iter));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{:.4} ns", ns)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro. After every
/// group runs, results are flushed as JSON when `BENCH_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO, test_mode: true };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert_eq!(n, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn json_results_render_nested_groups() {
        {
            let mut r = RESULTS.lock().unwrap();
            r.clear();
            r.extend([
                ("g1/a".to_string(), 12.34),
                ("g1/b".to_string(), 5.0),
                ("g2/c".to_string(), 1000.5),
            ]);
        }
        let path = std::env::temp_dir().join("criterion_stand_in_json_test.json");
        std::env::set_var("BENCH_JSON", &path);
        write_json_results();
        std::env::remove_var("BENCH_JSON");
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            got,
            "{\n  \"g1\": {\n    \"a\": 12.3,\n    \"b\": 5.0\n  },\n  \"g2\": {\n    \"c\": 1000.5\n  }\n}\n"
        );
        RESULTS.lock().unwrap().clear();
    }

    #[test]
    fn format_scales() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(1.2e4).ends_with("µs"));
        assert!(fmt_ns(3.0e6).ends_with("ms"));
        assert!(fmt_ns(2.0e9).ends_with("s"));
    }
}
