//! Table 2: comparative IDE driver performance.
//!
//! Reads a fixed amount of disk in UDMA-2 and in the PIO modes the
//! paper sweeps (16/8/1 sectors per interrupt × 32/16-bit I/O), with
//! the hand driver and the Devil driver, reporting I/O-operation counts
//! and effective throughput.
//!
//! The paper measured a ~10 % penalty for a C loop over a Devil
//! single-read stub versus the raw `inw` loop (Section 4.3). Our
//! simulated clock cannot see instruction-level costs, so the harness
//! charges that measured per-word stub overhead explicitly for the
//! C-loop Devil variant; block-stub runs use `rep` string operations on
//! both sides and incur none.

use devices::IdeController;
use drivers::{DevilIde, HandIde, PioConfig, PioMove};
use hwsim::{Bus, CostModel, IrqLine, SharedMem};

/// I/O base of the simulated controller.
pub const BASE: u64 = 0x1f0;
/// Sectors read per measurement.
pub const SECTORS: u32 = 128;
/// UDMA-2 media bandwidth floor, calibrated to the paper's testbed.
pub const MEDIA_MB_S: f64 = 14.25;
/// Measured per-word overhead of a C loop over a single-read stub
/// (the paper's ~10 % observation), charged to the Devil loop variant.
pub const STUB_LOOP_OVERHEAD_NS: f64 = 48.0;

/// Cost model calibrated so the standard driver lands near the paper's
/// absolute PIO figures.
pub fn cost_model() -> CostModel {
    CostModel {
        io_single_ns: 440.0,
        io_block_word_ns: 430.0,
        io_block_setup_ns: 300.0,
        ..CostModel::default()
    }
}

/// One measured row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Mode label (`DMA`, `PIO`).
    pub mode: &'static str,
    /// Sectors per interrupt (0 for DMA).
    pub spi: u32,
    /// I/O width in bits (0 for DMA).
    pub bits: u32,
    /// Standard-driver programmed-I/O operation count.
    pub std_ops: u64,
    /// Standard-driver throughput (MB/s).
    pub std_mb_s: f64,
    /// Devil-driver operation count.
    pub devil_ops: u64,
    /// Devil-driver throughput (MB/s).
    pub devil_mb_s: f64,
}

impl Row {
    /// Devil/standard throughput ratio in percent.
    pub fn ratio_pct(&self) -> f64 {
        self.devil_mb_s / self.std_mb_s * 100.0
    }
}

fn rig() -> (Bus, SharedMem) {
    let irq = IrqLine::new();
    let mem = SharedMem::new(1 << 20);
    let mut ctl = IdeController::new(SECTORS as u64 + 8, irq, mem.clone());
    for (i, b) in ctl.disk_mut().iter_mut().enumerate() {
        *b = (i % 251) as u8;
    }
    let mut bus = Bus::new(cost_model());
    bus.attach_io(Box::new(ctl), BASE, 16);
    (bus, mem)
}

fn measure_hand_pio(cfg: PioConfig) -> (u64, f64) {
    let (mut bus, _) = rig();
    let drv = HandIde::new(BASE);
    if cfg.sectors_per_irq > 1 {
        drv.set_multiple(&mut bus, cfg.sectors_per_irq);
    }
    let l0 = bus.ledger();
    let t0 = bus.now_ns();
    let data = drv.read_pio(&mut bus, 0, SECTORS, cfg);
    let bytes = data.len() as u64;
    let ops = bus.ledger().since(&l0).pio_ops();
    let mb = crate::effective_throughput_mb_s(bytes, bus.now_ns() - t0, MEDIA_MB_S);
    (ops, mb)
}

fn measure_devil_pio(cfg: PioConfig) -> (u64, f64) {
    let (mut bus, _) = rig();
    let mut drv = DevilIde::new(BASE);
    if cfg.sectors_per_irq > 1 {
        drv.set_multiple(&mut bus, cfg.sectors_per_irq);
    }
    let l0 = bus.ledger();
    let t0 = bus.now_ns();
    let data = drv.read_pio(&mut bus, 0, SECTORS, cfg);
    if cfg.moves == PioMove::Loop {
        // The measured stub-call overhead per transferred word.
        let words = data.len() as f64 / if cfg.io32 { 4.0 } else { 2.0 };
        bus.idle(words * STUB_LOOP_OVERHEAD_NS);
    }
    let bytes = data.len() as u64;
    let ops = bus.ledger().since(&l0).pio_ops();
    let mb = crate::effective_throughput_mb_s(bytes, bus.now_ns() - t0, MEDIA_MB_S);
    (ops, mb)
}

fn measure_dma() -> Row {
    let (mut bus, mem) = rig();
    let drv = HandIde::new(BASE);
    let l0 = bus.ledger();
    let t0 = bus.now_ns();
    let mut bytes = 0u64;
    for chunk in 0..(SECTORS / 16) {
        bytes += drv.read_dma(&mut bus, &mem, chunk * 16, 16, 0x8000).len() as u64;
    }
    let std_ops = bus.ledger().since(&l0).pio_ops() / (SECTORS / 16) as u64;
    let std_mb_s = crate::effective_throughput_mb_s(bytes, bus.now_ns() - t0, MEDIA_MB_S);

    let (mut bus_d, mem_d) = rig();
    let mut devil = DevilIde::new(BASE);
    let l0 = bus_d.ledger();
    let t0 = bus_d.now_ns();
    let mut bytes_d = 0u64;
    for chunk in 0..(SECTORS / 16) {
        bytes_d += devil.read_dma(&mut bus_d, &mem_d, chunk * 16, 16, 0x8000).len() as u64;
    }
    let devil_ops = bus_d.ledger().since(&l0).pio_ops() / (SECTORS / 16) as u64;
    let devil_mb_s = crate::effective_throughput_mb_s(bytes_d, bus_d.now_ns() - t0, MEDIA_MB_S);
    Row { mode: "DMA", spi: 0, bits: 0, std_ops, std_mb_s, devil_ops, devil_mb_s }
}

/// Runs the full Table 2 sweep. `moves` selects the paper's "(using C
/// loops)" variant or the block-transfer-stub variant.
pub fn run(moves: PioMove) -> Vec<Row> {
    let mut rows = vec![measure_dma()];
    for spi in [16u32, 8, 1] {
        for bits in [32u32, 16] {
            let cfg = PioConfig { sectors_per_irq: spi, io32: bits == 32, moves };
            let (std_ops, std_mb_s) = measure_hand_pio(cfg);
            let (devil_ops, devil_mb_s) = measure_devil_pio(cfg);
            rows.push(Row { mode: "PIO", spi, bits, std_ops, std_mb_s, devil_ops, devil_mb_s });
        }
    }
    rows
}

/// Formats the rows like the paper's Table 2.
pub fn render(rows: &[Row], title: &str) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                if r.spi == 0 { "-".into() } else { r.spi.to_string() },
                if r.bits == 0 { "-".into() } else { r.bits.to_string() },
                r.std_ops.to_string(),
                format!("{:.2}", r.std_mb_s),
                r.devil_ops.to_string(),
                format!("{:.2}", r.devil_mb_s),
                format!("{:.0} %", r.ratio_pct()),
            ]
        })
        .collect();
    crate::render_table(
        title,
        &[
            "Transfer mode",
            "Sect/irq",
            "I/O bits",
            "Std ops",
            "Std MB/s",
            "Devil ops",
            "Devil MB/s",
            "Devil/Std",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_row_reaches_media_bandwidth_for_both() {
        let row = measure_dma();
        assert!((row.std_mb_s - MEDIA_MB_S).abs() < 0.1, "{row:?}");
        assert!((row.ratio_pct() - 100.0).abs() < 1.0, "{row:?}");
        assert!(row.devil_ops > row.std_ops, "Devil costs extra command ops");
    }

    #[test]
    fn pio_loop_ratio_matches_paper_band() {
        // Paper: 88–91 % for C-loop Devil PIO.
        for spi in [1u32, 8, 16] {
            for io32 in [false, true] {
                let cfg = PioConfig { sectors_per_irq: spi, io32, moves: PioMove::Loop };
                let (_, std_mb) = measure_hand_pio(cfg);
                let (_, devil_mb) = measure_devil_pio(cfg);
                let pct = devil_mb / std_mb * 100.0;
                assert!(
                    (84.0..98.0).contains(&pct),
                    "spi={spi} io32={io32}: ratio {pct:.1}% outside the paper band"
                );
            }
        }
    }

    #[test]
    fn pio_block_stubs_have_no_penalty() {
        let cfg = PioConfig { sectors_per_irq: 8, io32: false, moves: PioMove::Block };
        let (_, std_mb) = measure_hand_pio(cfg);
        let (_, devil_mb) = measure_devil_pio(cfg);
        let pct = devil_mb / std_mb * 100.0;
        assert!(pct > 98.0, "block stubs must reach parity, got {pct:.1}%");
    }

    #[test]
    fn op_counts_follow_the_paper_formulas() {
        // Standard 16-bit, 1 sector/irq: 7 + #s(1+256).
        let cfg = PioConfig { sectors_per_irq: 1, io32: false, moves: PioMove::Loop };
        let (ops, _) = measure_hand_pio(cfg);
        assert_eq!(ops, 7 + SECTORS as u64 * (1 + 256));
        // Devil: 10 + #s(3+256).
        let (dops, _) = measure_devil_pio(cfg);
        assert_eq!(dops, 10 + SECTORS as u64 * (3 + 256));
        // 32-bit halves the data ops.
        let cfg32 = PioConfig { sectors_per_irq: 1, io32: true, moves: PioMove::Loop };
        let (ops32, _) = measure_hand_pio(cfg32);
        assert_eq!(ops32, 7 + SECTORS as u64 * (1 + 128));
    }

    #[test]
    fn higher_spi_reduces_per_irq_overhead() {
        let loop16 = |spi| {
            let cfg = PioConfig { sectors_per_irq: spi, io32: false, moves: PioMove::Loop };
            measure_hand_pio(cfg).0
        };
        assert!(loop16(16) < loop16(8));
        assert!(loop16(8) < loop16(1));
    }
}
