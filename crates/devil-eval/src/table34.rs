//! Tables 3 and 4: comparative Permedia2 Xfree86 driver performance —
//! `xbench`-style rectangle-fill and screen-copy rates at four pixel
//! depths and four command sizes.

use devices::Permedia2;
use drivers::{Depth, DevilPm2, HandPm2};
use hwsim::Bus;

/// MMIO base of the simulated chip.
pub const BASE: u64 = 0xf000_0000;
/// Screen dimensions.
pub const SCREEN: (u32, u32) = (1024, 768);
/// The paper's command sizes (square edges, pixels).
pub const SIZES: [u32; 4] = [2, 10, 100, 400];
/// The paper's pixel depths.
pub const DEPTHS: [Depth; 4] = [Depth::Bpp8, Depth::Bpp16, Depth::Bpp24, Depth::Bpp32];

/// Which primitive a measurement exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Primitive {
    /// Table 3: `fill rectangle`.
    Fill,
    /// Table 4: `screen area copy`.
    Copy,
}

/// One measured row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Bits per pixel.
    pub bpp: u32,
    /// Square edge in pixels.
    pub size: u32,
    /// Standard-driver MMIO ops per primitive (excluding wait reads).
    pub std_ops: u64,
    /// Standard-driver rate (operations per second).
    pub std_rate: f64,
    /// Standard-driver wait iterations per primitive.
    pub std_w: f64,
    /// Devil-driver MMIO ops per primitive.
    pub devil_ops: u64,
    /// Devil-driver rate.
    pub devil_rate: f64,
    /// Devil-driver wait iterations per primitive.
    pub devil_w: f64,
}

impl Row {
    /// Devil/standard rate ratio in percent.
    pub fn ratio_pct(&self) -> f64 {
        self.devil_rate / self.std_rate * 100.0
    }
}

fn rig() -> Bus {
    let mut bus = Bus::default();
    bus.attach_mem(Box::new(Permedia2::new(SCREEN.0, SCREEN.1)), BASE, 4096);
    bus
}

fn reps_for(size: u32) -> u32 {
    match size {
        2 => 4000,
        10 => 2000,
        100 => 400,
        _ => 60,
    }
}

/// Measures one (depth, size) cell for a driver closure. Returns
/// `(writes_per_op, rate_per_s, wait_iters_per_op)`.
fn measure(
    bus: &mut Bus,
    reps: u32,
    mut op: impl FnMut(&mut Bus, u32),
    waits: impl Fn() -> u64,
) -> (u64, f64, f64) {
    // Warm-up to reach FIFO steady state.
    for i in 0..8 {
        op(bus, i);
    }
    let l0 = bus.ledger();
    let t0 = bus.now_ns();
    let w0 = waits();
    for i in 0..reps {
        op(bus, i);
    }
    let delta = bus.ledger().since(&l0);
    // Let the engine drain exactly until idle so the last command is
    // complete (xbench measures completed operations) without padding
    // the elapsed time.
    while bus.mem_read(BASE + devices::permedia2::reg::IN_FIFO_SPACE, hwsim::Width::W32)
        < devices::permedia2::FIFO_DEPTH as u64
    {
        bus.idle(500.0);
    }
    let rate = hwsim::rate_per_s(reps as u64, bus.now_ns() - t0);
    let writes_per_op = delta.mem_write / reps as u64;
    let wait_per_op = (waits() - w0) as f64 / reps as f64;
    (writes_per_op, rate, wait_per_op)
}

/// Runs one (depth, size) cell of Table 3 or 4.
pub fn run_cell(primitive: Primitive, depth: Depth, size: u32) -> Row {
    let reps = reps_for(size);
    // Standard driver.
    let mut bus = rig();
    let mut hand = HandPm2::new(BASE, depth);
    hand.set_depth(&mut bus);
    let hand_cell = std::cell::RefCell::new(hand);
    let (std_ops, std_rate, std_w) = measure(
        &mut bus,
        reps,
        |bus, i| {
            let mut h = hand_cell.borrow_mut();
            match primitive {
                Primitive::Fill => h.fill_rect(bus, (i * 7) % 400, (i * 13) % 300, size, size, i),
                Primitive::Copy => h.copy_rect(
                    bus,
                    (i * 3) % 200,
                    (i * 5) % 200,
                    (i * 7) % 400,
                    (i * 11) % 300,
                    size,
                    size,
                ),
            }
        },
        || hand_cell.borrow().wait_iterations,
    );
    // Devil driver.
    let mut bus_d = rig();
    let mut devil = DevilPm2::new(BASE, depth);
    devil.set_depth(&mut bus_d);
    let devil_cell = std::cell::RefCell::new(devil);
    let (devil_ops, devil_rate, devil_w) = measure(
        &mut bus_d,
        reps,
        |bus, i| {
            let mut d = devil_cell.borrow_mut();
            match primitive {
                Primitive::Fill => d.fill_rect(bus, (i * 7) % 400, (i * 13) % 300, size, size, i),
                Primitive::Copy => d.copy_rect(
                    bus,
                    (i * 3) % 200,
                    (i * 5) % 200,
                    (i * 7) % 400,
                    (i * 11) % 300,
                    size,
                    size,
                ),
            }
        },
        || devil_cell.borrow().wait_iterations,
    );
    Row { bpp: depth.bits(), size, std_ops, std_rate, std_w, devil_ops, devil_rate, devil_w }
}

/// Runs the full 4×4 grid for one primitive.
pub fn run(primitive: Primitive) -> Vec<Row> {
    let mut rows = Vec::new();
    for depth in DEPTHS {
        for size in SIZES {
            rows.push(run_cell(primitive, depth, size));
        }
    }
    rows
}

/// Formats the rows like the paper's Tables 3/4.
pub fn render(rows: &[Row], title: &str, unit: &str) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.bpp.to_string(),
                format!("{}x{}", r.size, r.size),
                format!("{:.1}(#w) + {}", r.std_w, r.std_ops),
                format!("{:.0}", r.std_rate),
                format!("{:.1}(#w) + {}", r.devil_w, r.devil_ops),
                format!("{:.0}", r.devil_rate),
                format!("{:.0} %", r.ratio_pct()),
            ]
        })
        .collect();
    crate::render_table(
        title,
        &[
            "bpp",
            "Size",
            "Std I/O ops",
            &format!("Std {unit}"),
            "Devil I/O ops",
            &format!("Devil {unit}"),
            "Devil/Std",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_rect_devil_penalty_is_bounded() {
        // Paper worst case: 2x2 at 8/16 bpp, 94–97 %.
        let row = run_cell(Primitive::Fill, Depth::Bpp8, 2);
        let pct = row.ratio_pct();
        assert!((90.0..=100.5).contains(&pct), "2x2@8bpp ratio {pct:.1}%");
        assert_eq!(row.devil_ops - row.std_ops, 2, "+2 writes per primitive");
    }

    #[test]
    fn large_rects_reach_parity() {
        for depth in [Depth::Bpp8, Depth::Bpp32] {
            let row = run_cell(Primitive::Fill, depth, 400);
            let pct = row.ratio_pct();
            assert!(pct > 99.0, "400x400@{}bpp ratio {pct:.1}%", depth.bits());
        }
    }

    #[test]
    fn rates_fall_with_size_and_depth() {
        let r2 = run_cell(Primitive::Fill, Depth::Bpp8, 2);
        let r100 = run_cell(Primitive::Fill, Depth::Bpp8, 100);
        let r400 = run_cell(Primitive::Fill, Depth::Bpp8, 400);
        assert!(r2.std_rate > r100.std_rate && r100.std_rate > r400.std_rate);
        let d8 = run_cell(Primitive::Fill, Depth::Bpp8, 100);
        let d32 = run_cell(Primitive::Fill, Depth::Bpp32, 100);
        assert!(d8.std_rate > d32.std_rate, "deeper pixels are slower");
    }

    #[test]
    fn copies_are_slower_than_fills() {
        let f = run_cell(Primitive::Fill, Depth::Bpp16, 100);
        let c = run_cell(Primitive::Copy, Depth::Bpp16, 100);
        assert!(c.std_rate < f.std_rate);
    }

    #[test]
    fn wait_iterations_grow_on_big_commands() {
        let small = run_cell(Primitive::Fill, Depth::Bpp32, 2);
        let big = run_cell(Primitive::Fill, Depth::Bpp32, 400);
        assert!(big.std_w > small.std_w, "{} !> {}", big.std_w, small.std_w);
    }

    #[test]
    fn twentyfour_bit_path_has_equal_ops() {
        let row = run_cell(Primitive::Fill, Depth::Bpp24, 10);
        // The 24-bit paths of both drivers program the same number of
        // registers (the paper's equal 24-bit op counts).
        assert!(
            row.devil_ops.abs_diff(row.std_ops) <= 2,
            "24bpp ops: std {} devil {}",
            row.std_ops,
            row.devil_ops
        );
    }
}
