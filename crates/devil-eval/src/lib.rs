//! Experiment harnesses that regenerate the paper's evaluation.
//!
//! One module per table; each binary in `src/bin/` prints the
//! corresponding rows. Absolute numbers come from the simulated cost
//! model (`hwsim::CostModel`); the reproduction target is the *shape* —
//! who wins, by what factor, where the overhead appears.

#![forbid(unsafe_code)]

pub mod table2;
pub mod table34;

use std::fmt::Write as _;

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let line_len = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
    let _ = writeln!(out, "{}", "=".repeat(line_len));
    let hdr: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{:>w$}", h, w = widths[i])).collect();
    let _ = writeln!(out, "{}", hdr.join(" | "));
    let _ = writeln!(out, "{}", "-".repeat(line_len));
    for row in rows {
        let cells: Vec<String> =
            row.iter().enumerate().map(|(i, c)| format!("{:>w$}", c, w = widths[i])).collect();
        let _ = writeln!(out, "{}", cells.join(" | "));
    }
    out
}

/// Effective throughput in MB/s given CPU-side simulated time and a
/// media bandwidth floor: the transfer cannot finish before the medium
/// delivers the bytes (`hdparm` measures the same bound).
pub fn effective_throughput_mb_s(bytes: u64, cpu_ns: f64, media_mb_s: f64) -> f64 {
    let media_ns = bytes as f64 / media_mb_s * 1.0e3; // bytes / (MB/s) in ns
    hwsim::throughput_mb_s(bytes, cpu_ns.max(media_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "20000".into()]],
        );
        assert!(t.contains("a | "), "{t}");
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn media_floor_caps_throughput() {
        // CPU time negligible: media-bound at 14.25 MB/s.
        let t = effective_throughput_mb_s(1_000_000, 10.0, 14.25);
        assert!((t - 14.25).abs() < 0.01, "{t}");
        // CPU-bound case.
        let t2 = effective_throughput_mb_s(1_000_000, 1.0e9, 14.25);
        assert!((t2 - 1.0).abs() < 0.01, "{t2}");
    }
}
