//! Regenerates Table 2: IDE Linux driver comparative performance.

use devil_eval::table2;
use drivers::PioMove;

fn main() {
    let rows = table2::run(PioMove::Loop);
    print!(
        "{}",
        table2::render(&rows, "Table 2: IDE driver comparative performance (using C loops)")
    );
    println!();
    let rows = table2::run(PioMove::Block);
    print!(
        "{}",
        table2::render(&rows, "Table 2 (variant): IDE driver with block-transfer stubs (rep insw)")
    );
}
