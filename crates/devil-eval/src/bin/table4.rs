//! Regenerates Table 4: Permedia2 Xfree86 driver, screen-copy test.

use devil_eval::table34::{render, run, Primitive};

fn main() {
    let rows = run(Primitive::Copy);
    print!("{}", render(&rows, "Table 4: Permedia2 Xfree86 driver — screen copy", "copies/s"));
}
