//! Regenerates Table 3: Permedia2 Xfree86 driver, rectangle test.

use devil_eval::table34::{render, run, Primitive};

fn main() {
    let rows = run(Primitive::Fill);
    print!("{}", render(&rows, "Table 3: Permedia2 Xfree86 driver — rectangle fill", "rect/s"));
}
