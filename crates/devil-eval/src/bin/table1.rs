//! Regenerates Table 1: language error-detection coverage analysis.

fn main() {
    println!("Table 1: Language Error-Detection Coverage Analysis");
    println!("(mutation analysis; paper ratios: busmouse 5.9, IDE 4.6, NE2000 3.2 for CDevil)\n");
    let mut rows = Vec::new();
    for d in mutation::table1() {
        let combined = d.combined();
        for (lang, s, ratio) in [
            ("C", d.c, None),
            ("Devil", d.devil, None),
            ("CDevil", d.cdevil, Some(d.ratio_cdevil())),
            ("Devil+CDevil", combined, Some(d.ratio_combined())),
        ] {
            rows.push(vec![
                d.device.to_string(),
                lang.to_string(),
                s.lines.to_string(),
                s.sites.to_string(),
                format!("{:.1}", s.mutants_per_site()),
                format!("{:.1}", s.undetected_per_site()),
                format!("{:.1}", s.sites_with_undetected()),
                ratio.map_or_else(|| "-".into(), |r| format!("{r:.1}")),
            ]);
        }
    }
    print!(
        "{}",
        devil_eval_render(
            &[
                "Device",
                "Language",
                "Lines",
                "Sites",
                "Mut/site",
                "Undet/site",
                "Sites w/ undet",
                "Ratio to C"
            ],
            &rows
        )
    );
}

fn devil_eval_render(headers: &[&str], rows: &[Vec<String>]) -> String {
    devil_eval::render_table("", headers, rows)
}
