//! Quantifies the paper's Section 1 claim that bit operations make up
//! a large fraction (up to 30 %) of hardware-operating driver code.

use mutation::fixtures::{BUSMOUSE_C, IDE_C, NE2000_C};

fn main() {
    println!("Bit-operation density in hand-crafted hardware-operating code\n");
    let mut rows = Vec::new();
    for (name, src) in [("busmouse", BUSMOUSE_C), ("ide", IDE_C), ("ne2000", NE2000_C)] {
        let toks = mutation::minic::lex(src).expect("fixtures lex");
        let total = toks.len();
        let bitops = toks
            .iter()
            .filter(|t| {
                matches!(t, mutation::minic::CTok::Op(op) if matches!(
                    op.as_str(),
                    "&" | "|" | "^" | "~" | "<<" | ">>" | "|=" | "&=" | "^=" | "<<=" | ">>="
                ))
            })
            .count();
        // The paper counts bit-op *statements*; we report lines touched.
        let lines_with = src
            .lines()
            .filter(|l| l.contains('&') || l.contains('|') || l.contains(">>") || l.contains("<<"))
            .count();
        let lines: usize = src.lines().filter(|l| !l.trim().is_empty()).count();
        rows.push(vec![
            name.to_string(),
            format!("{bitops}/{total} tokens"),
            format!("{:.0} %", lines_with as f64 / lines as f64 * 100.0),
        ]);
    }
    print!(
        "{}",
        devil_eval::render_table("", &["Driver", "Bit-op tokens", "Lines with bit ops"], &rows)
    );
}
